package eventlib_test

// Regression tests for stale-readiness fd-reuse aliasing: POSIX recycles a
// closed descriptor number on the very next open, so a readiness report that
// was already in flight when a connection closed carries the same raw fd as a
// brand-new connection. eventlib used to resolve reports by raw fd alone,
// which let such a report fire the callback of the NEW event registered on
// the recycled descriptor — precisely the hazard the paper's stale-signal
// discussion (§4) warns applications about. Registrations and reports are now
// generation-tagged and mismatches are dropped.

import (
	"testing"

	"repro/internal/core"
	"repro/internal/eventlib"
	"repro/internal/simkernel"
	"repro/internal/simtest"
)

// inFlightPoller delegates to a real mechanism but lets the test run a hook at
// the instant between the kernel collecting a wait's results and the
// application dispatching them — the report-in-flight window that exists on
// real hardware (results already copied out / signal dequeued, callbacks not
// yet run) and that a close-plus-reuse can race into.
type inFlightPoller struct {
	core.Poller
	targetFD int
	hook     func()
}

func (w *inFlightPoller) Wait(max int, timeout core.Duration, handler func(events []core.Event, now core.Time)) {
	w.Poller.Wait(max, timeout, func(events []core.Event, now core.Time) {
		if w.hook != nil {
			for _, e := range events {
				if e.FD == w.targetFD {
					hook := w.hook
					w.hook = nil
					hook()
					break
				}
			}
		}
		handler(events, now)
	})
}

// TestFDReuseAliasingAllMechanisms drives the aliasing window through every
// registered backend: a connection's readiness report is in flight when the
// connection closes, its descriptor number is recycled by a new connection,
// and a new event is registered on the recycled number. The stale report must
// not fire the new event's callback.
func TestFDReuseAliasingAllMechanisms(t *testing.T) {
	for _, b := range eventlib.Backends() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			env := simtest.NewEnv()
			inner, _, err := eventlib.OpenBackend(env.K, env.P, b.Name)
			if err != nil {
				t.Fatal(err)
			}
			fd, oldFile := env.NewFD(0)
			wrapped := &inFlightPoller{Poller: inner, targetFD: fd.Num}
			base := eventlib.NewWithPoller(env.K, env.P, wrapped, eventlib.Config{})
			defer base.Close()

			oldFired, newFired := 0, 0
			oldEv := base.NewEvent(fd.Num, eventlib.EvRead|eventlib.EvPersist,
				func(int, eventlib.What, core.Time) { oldFired++ })
			if err := oldEv.Add(0); err != nil {
				t.Fatal(err)
			}

			// While the report for the old connection is in flight: close it,
			// let a new connection recycle its descriptor number, and register
			// a fresh event there.
			wrapped.hook = func() {
				if err := oldEv.Del(); err != nil {
					t.Fatal(err)
				}
				if err := env.P.CloseFD(env.K.Now(), fd.Num); err != nil {
					t.Fatal(err)
				}
				newFD, _ := env.NewFD(0) // new connection, not ready
				if newFD.Num != fd.Num {
					t.Fatalf("descriptor not recycled: got %d, want %d", newFD.Num, fd.Num)
				}
				newEv := base.NewEvent(newFD.Num, eventlib.EvRead|eventlib.EvPersist,
					func(int, eventlib.What, core.Time) { newFired++ })
				if err := newEv.Add(0); err != nil {
					t.Fatal(err)
				}
			}

			base.Dispatch()
			oldFile.SetReady(env.K.Now(), core.POLLIN) // the report that goes stale
			env.Run()

			if newFired != 0 {
				t.Fatalf("stale report for the closed connection fired the recycled descriptor's new event %d time(s)", newFired)
			}
			if oldFired != 0 {
				t.Fatalf("deleted event fired %d time(s)", oldFired)
			}
		})
	}
}

// TestFDReuseStaleSignalRTSig exercises the paper's own stale-signal case with
// no test interposition at all: the RT signal queue dequeues one siginfo per
// wait, so a completion queued for a connection survives on the queue across
// the wait in which the server closes that connection. When the descriptor
// number has been recycled by then, the stale siginfo must not fire the new
// connection's event.
func TestFDReuseStaleSignalRTSig(t *testing.T) {
	env := simtest.NewEnv()
	poller, _, err := eventlib.OpenBackend(env.K, env.P, "rtsig")
	if err != nil {
		t.Fatal(err)
	}
	base := eventlib.NewWithPoller(env.K, env.P, poller, eventlib.Config{})
	defer base.Close()

	fdA, fileA := env.NewFD(0)
	fdN, fileN := env.NewFD(0)

	newFired := 0
	var reused *simkernel.FD

	evN := base.NewEvent(fdN.Num, eventlib.EvRead|eventlib.EvPersist,
		func(int, eventlib.What, core.Time) { t.Fatal("old event fired") })
	evA := base.NewEvent(fdA.Num, eventlib.EvRead|eventlib.EvPersist,
		func(_ int, _ eventlib.What, now core.Time) {
			// First delivery: the server closes connection N (whose own
			// completion signal is still queued behind this one) and accepts a
			// new connection that recycles N's descriptor number.
			if reused != nil {
				return
			}
			if err := evN.Del(); err != nil {
				t.Fatal(err)
			}
			if err := env.P.CloseFD(now, fdN.Num); err != nil {
				t.Fatal(err)
			}
			reused, _ = env.NewFD(0)
			if reused.Num != fdN.Num {
				t.Fatalf("descriptor not recycled: got %d, want %d", reused.Num, fdN.Num)
			}
			newEv := base.NewEvent(reused.Num, eventlib.EvRead|eventlib.EvPersist,
				func(int, eventlib.What, core.Time) { newFired++ })
			if err := newEv.Add(0); err != nil {
				t.Fatal(err)
			}
		})
	if err := evA.Add(0); err != nil {
		t.Fatal(err)
	}
	if err := evN.Add(0); err != nil {
		t.Fatal(err)
	}

	base.Dispatch()
	// Queue A's completion first, then N's: sigwaitinfo dequeues one per
	// wait, so N's siginfo is still pending when A's callback closes N.
	fileA.SetReady(env.K.Now(), core.POLLIN)
	fileN.SetReady(env.K.Now(), core.POLLIN)
	env.Run()

	if reused == nil {
		t.Fatal("test never reached the close-and-recycle step")
	}
	if newFired != 0 {
		t.Fatalf("stale siginfo fired the recycled descriptor's new event %d time(s)", newFired)
	}
}

// TestInstallRecyclesLowestDescriptor pins the POSIX allocation rule the
// aliasing hazard depends on: a closed descriptor number is reused by the next
// open, and the recycled descriptor carries a fresh generation.
func TestInstallRecyclesLowestDescriptor(t *testing.T) {
	env := simtest.NewEnv()
	fds := make([]*simkernel.FD, 4)
	for i := range fds {
		fds[i], _ = env.NewFD(0)
		if fds[i].Num != 3+i {
			t.Fatalf("fd %d allocated as %d", i, fds[i].Num)
		}
	}
	oldGen := fds[1].Gen
	if err := env.P.CloseFD(0, fds[1].Num); err != nil {
		t.Fatal(err)
	}
	re, _ := env.NewFD(0)
	if re.Num != fds[1].Num {
		t.Fatalf("lowest unused descriptor not recycled: got %d, want %d", re.Num, fds[1].Num)
	}
	if re.Gen == oldGen || re.Gen == 0 {
		t.Fatalf("recycled descriptor generation %d not distinct from %d", re.Gen, oldGen)
	}
	next, _ := env.NewFD(0)
	if next.Num != 7 {
		t.Fatalf("next allocation = %d, want 7", next.Num)
	}
}
