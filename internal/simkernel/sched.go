package simkernel

import (
	"fmt"

	"repro/internal/core"
)

// Scheduler models the processors of the simulated server host. The paper's
// testbed is a uniprocessor, and a Scheduler over one CPU reproduces it
// exactly; the SMP extension places several CPUs behind one virtual clock so
// that processes pinned to different cores execute their batches concurrently
// in virtual time, while work bound to the same core still serialises
// first-come first-served.
//
// The scheduler deliberately models hard affinity only (each Proc is pinned to
// one CPU for its lifetime, as a prefork worker is in practice): there is no
// migration and no load balancing, so simulation runs stay deterministic and a
// single-CPU scheduler is bit-identical to the original uniprocessor model.
type Scheduler struct {
	cpus []*CPU
}

// NewScheduler creates n CPUs (at least one) bound to the simulator.
func NewScheduler(sim *Simulator, n int) *Scheduler {
	if n < 1 {
		n = 1
	}
	s := &Scheduler{cpus: make([]*CPU, n)}
	for i := range s.cpus {
		c := NewCPU(sim)
		c.Index = i
		s.cpus[i] = c
	}
	return s
}

// NumCPU reports the number of processors.
func (s *Scheduler) NumCPU() int { return len(s.cpus) }

// CPU returns processor i. Out-of-range indexes are a programming error.
func (s *Scheduler) CPU(i int) *CPU {
	if i < 0 || i >= len(s.cpus) {
		panic(fmt.Sprintf("simkernel: CPU index %d outside [0,%d)", i, len(s.cpus)))
	}
	return s.cpus[i]
}

// CPUs returns the processors in index order. The slice is shared; callers
// must not modify it.
func (s *Scheduler) CPUs() []*CPU { return s.cpus }

// Utilizations reports each CPU's busy fraction against its work window at
// time now (see CPU.WorkWindow): per-CPU utilisation in [0,1] for a correctly
// charging simulation.
func (s *Scheduler) Utilizations(now core.Time) []float64 {
	out := make([]float64, len(s.cpus))
	for i, c := range s.cpus {
		out[i] = c.Utilization(c.WorkWindow(now))
	}
	return out
}

// BusyUntil reports the latest completion instant across all CPUs.
func (s *Scheduler) BusyUntil() core.Time {
	var t core.Time
	for _, c := range s.cpus {
		if c.BusyUntil() > t {
			t = c.BusyUntil()
		}
	}
	return t
}
