package simkernel

import "repro/internal/core"

// CostModel centralises every per-operation CPU cost charged by the simulated
// kernel and the event-notification mechanisms. The constants are expressed in
// virtual time on the paper's 400 MHz AMD K6-2 server and are calibrated so
// that the unloaded thttpd server saturates near ~1000-1200 replies per second,
// matching the knee observed in the paper's Figures 4-14. The *relative*
// magnitudes are what the reproduction depends on:
//
//   - stock poll() pays per-interest costs on every call (copy-in, wait-queue
//     manipulation, a device-driver poll callback per descriptor);
//   - /dev/poll pays per-update costs once and per-ready costs per call, with
//     driver hints eliminating most driver poll callbacks;
//   - RT signals pay a per-event syscall (sigwaitinfo) plus an enqueue cost in
//     interrupt context that grows mildly with the number of registered
//     descriptors (fasync list traversal).
type CostModel struct {
	// SyscallEntry is the fixed cost of entering and leaving the kernel for any
	// system call (poll, ioctl, write, read, sigwaitinfo, accept, ...).
	SyscallEntry core.Duration

	// --- poll()-family costs -------------------------------------------------

	// PollCopyIn is the per-pollfd cost of copying the interest array from user
	// space and parsing it (stock poll only).
	PollCopyIn core.Duration
	// PollCopyOut is the per-ready-descriptor cost of copying results back to
	// user space. The mmap'd result area eliminates it.
	PollCopyOut core.Duration
	// DriverPoll is the cost of one device-driver poll callback (the f_op->poll
	// call that inspects a socket's state).
	DriverPoll core.Duration
	// WaitQueueOp is the per-descriptor cost of adding to or removing from a
	// wait queue when a poll-family call blocks.
	WaitQueueOp core.Duration
	// PollReadyRescan is the per-interest cost charged for every ready
	// descriptor a stock poll() call returns. It models the component of the
	// 2.2 poll path that does not amortise under load: because benchmark
	// arrivals are spread out in time, the sleeping server is woken per
	// readiness transition and re-walks its wait queues and interest set to
	// find the one or two descriptors that became ready, so the O(interest set)
	// work is effectively paid per event rather than per batch. This is the
	// empirical behaviour measured by Banga & Mogul (USENIX '98) and by the
	// paper's Figures 6, 8 and 10, and it is the term the /dev/poll hinting
	// design removes.
	PollReadyRescan core.Duration

	// ServerLoopOverhead is the per-event-loop-iteration bookkeeping cost of a
	// poll-style single-process server (thttpd's timer list scan, connection
	// table management and fdwatch setup). It is charged once per batch of
	// events the thttpd-style servers process.
	ServerLoopOverhead core.Duration

	// --- /dev/poll costs ------------------------------------------------------

	// InterestUpdate is the per-pollfd cost of an add/modify/remove written to
	// /dev/poll (hash lookup plus backmap maintenance).
	InterestUpdate core.Duration
	// HintCheck is the per-descriptor cost of consulting the hint bitmap /
	// cached result instead of calling the driver.
	HintCheck core.Duration
	// HintPost is the interrupt-context cost of a driver posting a hint to the
	// backmapping list when a socket changes state.
	HintPost core.Duration
	// BackmapLock is the cost of taking the backmap read-write lock once per
	// DP_POLL scan.
	BackmapLock core.Duration
	// MmapSetup is the one-time cost of DP_ALLOC plus mmap of the result area.
	MmapSetup core.Duration

	// --- RT signal costs ------------------------------------------------------

	// SigEnqueue is the interrupt-context cost of appending a siginfo to the RT
	// signal queue when an I/O completion occurs.
	SigEnqueue core.Duration
	// SigEnqueuePerFD is the additional per-registered-descriptor cost paid on
	// every completion delivered through the RT signal path (fasync/file-table
	// walks and the cache pressure of phhttpd's per-connection bookkeeping).
	// This is the term that makes a large inactive-connection population
	// measurably slow down the signal path — the effect the paper observed in
	// Figures 12 and 13 and explicitly called unexpected ("This may be a
	// problem with RT signals or with the phhttpd implementation itself"); the
	// constant is calibrated to reproduce those figures' shapes.
	SigEnqueuePerFD core.Duration
	// SigDequeue is the cost of one sigwaitinfo() dequeue beyond SyscallEntry.
	SigDequeue core.Duration
	// SigDequeueBatch is the per-additional-event cost of the proposed
	// sigtimedwait4() batch dequeue (paper §6 future work): one syscall entry is
	// paid for the whole batch, and each extra siginfo copied out costs this.
	SigDequeueBatch core.Duration
	// SigOverflow is the cost of raising and handling SIGIO on queue overflow,
	// excluding the recovery poll itself.
	SigOverflow core.Duration
	// SigMaskChange is the cost of changing the signal mask / handler, paid by
	// phhttpd's overflow recovery when it flushes pending signals.
	SigMaskChange core.Duration

	// --- completion ring (io_uring-shaped) costs ------------------------------

	// RingEnter is the cost of one io_uring_enter()-style batched submission
	// syscall beyond SyscallEntry: fetching the SQ tail, validating the batch
	// and kicking the kernel-side consumer. Paid once per Enter regardless of
	// how many submission entries the batch drains.
	RingEnter core.Duration
	// RingSubmit is the per-submission-entry cost of the kernel consuming one
	// SQE from the shared ring: reading the entry, resolving the descriptor
	// and arming the internal poll request. Much cheaper than InterestUpdate's
	// hash/backmap path because the SQE arrives in a cache-hot shared ring.
	RingSubmit core.Duration
	// RingCQPost is the interrupt-context cost of publishing completions to
	// the CQ ring: one store-release of the CQ tail plus the waiter wakeup
	// check. Charged once per posting *batch* — completions that arrive while
	// the CQ is already non-empty coalesce onto the pending doorbell rather
	// than paying again, which is the amortisation RT signals lack (they pay
	// SigEnqueue + SigEnqueuePerFD per event).
	RingCQPost core.Duration
	// RingCQReap is the per-completion cost of the user side consuming one CQE
	// from the shared ring (a load-acquire and a struct read; no copy-out
	// syscall, the mmap'd-ring analogue of /dev/poll's result area).
	RingCQReap core.Duration
	// RingRegisterBuf is the one-time per-descriptor cost of registering a
	// fixed buffer with the kernel (pinning pages and installing the mapping),
	// paid at interest-registration time when registered buffers are enabled.
	RingRegisterBuf core.Duration
	// SockReadCopy is the portion of SockRead that is the user-space copy
	// (copy_to_user of the received bytes). Reads into a registered buffer
	// skip exactly this component; it must stay below SockRead.
	SockReadCopy core.Duration

	// --- socket & HTTP service costs ------------------------------------------

	// Accept is the cost of one accept() beyond SyscallEntry.
	Accept core.Duration
	// SockRead is the cost of one read() on a socket beyond SyscallEntry.
	SockRead core.Duration
	// SockWritePerKB is the per-kilobyte cost of write() on a socket
	// (copy + checksum + driver enqueue).
	SockWritePerKB core.Duration
	// SockWriteCopyPerKB is the portion of SockWritePerKB that is the
	// user-to-kernel copy (copy_from_user into an sk_buff). sendfile(2) skips
	// exactly this component — the mirror of SockReadCopy on the read side —
	// and it must stay below SockWritePerKB.
	SockWriteCopyPerKB core.Duration
	// SendfilePage is the per-page cost sendfile(2) pays instead of the copy:
	// looking the page up in the page cache, wiring it into the socket's
	// zero-copy transmit path and taking a reference.
	SendfilePage core.Duration
	// SockClose is the cost of close() beyond SyscallEntry.
	SockClose core.Duration
	// FcntlSetSig is the cost of fcntl(F_SETSIG/F_SETOWN/O_ASYNC) per call.
	FcntlSetSig core.Duration
	// NetRxIRQ is the interrupt-context cost of receiving one packet/segment.
	NetRxIRQ core.Duration
	// ConnHandoff is the per-connection cost of passing a descriptor over a
	// UNIX-domain socket, paid by phhttpd's overflow recovery.
	ConnHandoff core.Duration

	// --- datagram (UDP) costs -------------------------------------------------
	// Charged only by the datagram transport (netsim.OpenDatagram/SendTo/
	// RecvFrom); stream-only runs never touch them.

	// DgramSend is the fixed cost of one sendto(2) beyond SyscallEntry:
	// destination lookup, header build and driver enqueue for a single
	// datagram. No connection state is consulted, so it is cheaper than the
	// TCP write path's fixed portion.
	DgramSend core.Duration
	// DgramSendPerKB is the per-kilobyte copy+checksum cost of sendto(2),
	// the UDP analogue of SockWritePerKB (no segmentation bookkeeping).
	DgramSendPerKB core.Duration
	// DgramRecv is the cost of one recvfrom(2) beyond SyscallEntry: dequeue
	// one datagram and copy it (small DHT-sized payloads) to user space.
	DgramRecv core.Duration
	// DgramDemux is the interrupt-context cost of demultiplexing an arriving
	// datagram onto its bound socket (hash on the destination port), paid on
	// top of NetRxIRQ for every datagram that reaches the host.
	DgramDemux core.Duration

	// HTTPService is the application-level cost of serving one static request
	// once its descriptor is known to be readable: parsing the request, locating
	// the cached 6 KB document and preparing the response headers. Transmission
	// costs are charged separately through SockWritePerKB.
	HTTPService core.Duration

	// --- response cache costs -------------------------------------------------
	// Charged only when a server enables the mmap response cache (rcache);
	// without it the historical HTTPService-only serve path is unchanged.

	// CacheHit is the cost of serving a document already mapped into the
	// response cache: a hash lookup and an LRU touch.
	CacheHit core.Duration
	// FileOpen is the cost of the open(2)+fstat(2) pair a cache miss pays to
	// reach the document on disk (dentry walk, inode read — warm metadata).
	FileOpen core.Duration
	// FileReadPage is the per-page cost a cache miss pays to fault the
	// document's body into the new mapping (page-cache allocation plus copy).
	FileReadPage core.Duration

	// SchedWakeup is the latency between an event making a sleeping process
	// runnable and that process starting to execute (context switch).
	SchedWakeup core.Duration

	// SignalDeliver is the cost of delivering an asynchronous signal to a
	// blocked process and returning from the handler (save context, run the
	// no-op handler, sigreturn). It is charged when fault injection interrupts
	// a blocking wait with EINTR; the interrupted syscall's entry cost was
	// already paid, and the restarted call pays a fresh one — exactly the
	// double charge a real EINTR restart loop incurs.
	SignalDeliver core.Duration
}

// DefaultCostModel returns the calibrated cost model described in DESIGN.md §5.
func DefaultCostModel() *CostModel {
	us := func(f float64) core.Duration { return core.Duration(f * float64(core.Microsecond)) }
	return &CostModel{
		SyscallEntry: us(2.0),

		PollCopyIn:      us(0.12),
		PollCopyOut:     us(0.15),
		DriverPoll:      us(0.90),
		WaitQueueOp:     us(0.25),
		PollReadyRescan: us(1.30),

		ServerLoopOverhead: us(150.0),

		InterestUpdate: us(1.00),
		HintCheck:      us(0.06),
		HintPost:       us(0.30),
		BackmapLock:    us(0.40),
		MmapSetup:      us(150.0),

		SigEnqueue:      us(2.00),
		SigEnqueuePerFD: us(0.35),
		SigDequeue:      us(10.0),
		SigDequeueBatch: us(0.90),
		SigOverflow:     us(25.0),
		SigMaskChange:   us(4.0),

		RingEnter:       us(0.60),
		RingSubmit:      us(0.30),
		RingCQPost:      us(0.40),
		RingCQReap:      us(0.10),
		RingRegisterBuf: us(2.0),
		SockReadCopy:    us(2.5),

		Accept:             us(12.0),
		SockRead:           us(6.0),
		SockWritePerKB:     us(18.0),
		SockWriteCopyPerKB: us(6.0),
		SendfilePage:       us(0.50),
		SockClose:          us(8.0),
		FcntlSetSig:        us(3.0),
		NetRxIRQ:           us(4.0),
		ConnHandoff:        us(40.0),

		DgramSend:      us(3.0),
		DgramSendPerKB: us(6.0),
		DgramRecv:      us(4.0),
		DgramDemux:     us(1.0),

		HTTPService: us(620.0),

		CacheHit:     us(0.80),
		FileOpen:     us(10.0),
		FileReadPage: us(3.0),

		SchedWakeup: us(8.0),

		SignalDeliver: us(5.0),
	}
}

// Clone returns a copy of the cost model, so experiments can perturb a single
// constant (ablations) without affecting others.
func (c *CostModel) Clone() *CostModel {
	out := *c
	return &out
}

// WriteCost returns the CPU cost of writing n bytes to a socket, excluding the
// syscall entry cost.
func (c *CostModel) WriteCost(n int) core.Duration {
	if n <= 0 {
		return 0
	}
	return core.Duration(float64(c.SockWritePerKB) * float64(n) / 1024.0)
}

// DgramSendCost returns the CPU cost of sending one n-byte datagram with
// sendto(2), excluding the syscall entry cost.
func (c *CostModel) DgramSendCost(n int) core.Duration {
	if n < 0 {
		n = 0
	}
	return c.DgramSend + core.Duration(float64(c.DgramSendPerKB)*float64(n)/1024.0)
}

// sendfilePageSize is the page granularity of the zero-copy transmit charge.
const sendfilePageSize = 4096

// SendfileCost returns the CPU cost of transferring n bytes with sendfile(2),
// excluding the syscall entry cost: the write path with the user-space copy
// component removed, plus the per-page page-cache wiring charge.
func (c *CostModel) SendfileCost(n int) core.Duration {
	if n <= 0 {
		return 0
	}
	perKB := c.SockWritePerKB - c.SockWriteCopyPerKB
	if perKB < 0 {
		perKB = 0
	}
	pages := (n + sendfilePageSize - 1) / sendfilePageSize
	return core.Duration(float64(perKB)*float64(n)/1024.0) + core.Duration(pages)*c.SendfilePage
}
