package simkernel

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
)

// fakeFile is a minimal File implementation for descriptor-table tests.
type fakeFile struct {
	ready    core.EventMask
	notify   Notifier
	closed   bool
	closedAt core.Time
}

func (f *fakeFile) Poll() core.EventMask { return f.ready }
func (f *fakeFile) SetNotifier(n Notifier) {
	f.notify = n
}
func (f *fakeFile) Close(now core.Time) { f.closed = true; f.closedAt = now }

// setReady changes readiness and fires the notifier, like a driver would.
func (f *fakeFile) setReady(now core.Time, mask core.EventMask) {
	f.ready = mask
	if f.notify != nil {
		f.notify.Notify(now, mask)
	}
}

type recordingWatcher struct {
	events []core.EventMask
	fds    []int
	// removeSelf, when set, unregisters the watcher on first delivery to
	// exercise mutation during fan-out.
	removeSelf bool
}

func (w *recordingWatcher) ReadinessChanged(now core.Time, fd *FD, mask core.EventMask) {
	w.events = append(w.events, mask)
	w.fds = append(w.fds, fd.Num)
	if w.removeSelf {
		fd.RemoveWatcher(w)
	}
}

func TestCPUSerializesWork(t *testing.T) {
	sim := NewSimulator()
	cpu := NewCPU(sim)
	var done []core.Time
	cpu.Exec(0, 10*core.Microsecond, func(now core.Time) { done = append(done, now) })
	cpu.Exec(0, 5*core.Microsecond, func(now core.Time) { done = append(done, now) })
	sim.Run()
	if len(done) != 2 {
		t.Fatalf("done = %v", done)
	}
	if done[0] != core.Time(10*core.Microsecond) {
		t.Fatalf("first completion = %v", done[0])
	}
	if done[1] != core.Time(15*core.Microsecond) {
		t.Fatalf("second completion should queue behind first: %v", done[1])
	}
	if cpu.Busy != 15*core.Microsecond {
		t.Fatalf("Busy = %v", cpu.Busy)
	}
	if cpu.Jobs != 2 {
		t.Fatalf("Jobs = %d", cpu.Jobs)
	}
}

func TestCPUIdleGap(t *testing.T) {
	sim := NewSimulator()
	cpu := NewCPU(sim)
	cpu.Exec(0, 10*core.Microsecond, nil)
	// Work arriving after the CPU went idle starts immediately.
	finish := cpu.Exec(core.Time(100*core.Microsecond), 5*core.Microsecond, nil)
	if finish != core.Time(105*core.Microsecond) {
		t.Fatalf("finish = %v", finish)
	}
	if got := cpu.QueueDelay(core.Time(101 * core.Microsecond)); got != 4*core.Microsecond {
		t.Fatalf("QueueDelay = %v", got)
	}
	if got := cpu.QueueDelay(core.Time(200 * core.Microsecond)); got != 0 {
		t.Fatalf("QueueDelay idle = %v", got)
	}
}

func TestCPUNegativeCostTreatedAsZero(t *testing.T) {
	sim := NewSimulator()
	cpu := NewCPU(sim)
	finish := cpu.Exec(core.Time(5*core.Microsecond), -10, nil)
	if finish != core.Time(5*core.Microsecond) {
		t.Fatalf("finish = %v", finish)
	}
	if cpu.Busy != 0 {
		t.Fatalf("Busy = %v", cpu.Busy)
	}
}

func TestCPUUtilization(t *testing.T) {
	sim := NewSimulator()
	cpu := NewCPU(sim)
	cpu.Exec(0, 500*core.Millisecond, nil)
	if u := cpu.Utilization(core.Second); u != 0.5 {
		t.Fatalf("Utilization = %v", u)
	}
	if u := cpu.Utilization(0); u != 0 {
		t.Fatalf("Utilization(0) = %v", u)
	}
	// No clamping: a ratio above 1 against a window the work does not fit in
	// is reported as-is, so double-charged batches cannot hide behind "100%".
	if u := cpu.Utilization(100 * core.Millisecond); u != 5 {
		t.Fatalf("Utilization must not clamp, got %v", u)
	}
	// Against the work window the ratio is a true utilisation, <= 1 whenever
	// charging is correct.
	if u := cpu.Utilization(cpu.WorkWindow(0)); u != 1 {
		t.Fatalf("Utilization over WorkWindow = %v, want 1", u)
	}
}

// Property: completion times are nondecreasing and Busy equals the sum of all
// submitted costs, regardless of submission times.
func TestCPUAccountingProperty(t *testing.T) {
	f := func(costs []uint16, gaps []uint16) bool {
		sim := NewSimulator()
		cpu := NewCPU(sim)
		now := core.Time(0)
		var total core.Duration
		last := core.Time(-1)
		for i, c := range costs {
			if i < len(gaps) {
				now = now.Add(core.Duration(gaps[i]) * core.Microsecond)
			}
			cost := core.Duration(c) * core.Nanosecond
			total += cost
			fin := cpu.Exec(now, cost, nil)
			if fin < last {
				return false
			}
			last = fin
		}
		return cpu.Busy == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestKernelDefaults(t *testing.T) {
	k := NewKernel(nil)
	if k.Cost == nil || k.Sim == nil || k.CPU == nil {
		t.Fatal("NewKernel(nil) left fields unset")
	}
	if k.Now() != 0 {
		t.Fatalf("Now = %v", k.Now())
	}
	// Interrupt charges the CPU.
	k.Interrupt(0, 5*core.Microsecond, nil)
	if k.CPU.Busy != 5*core.Microsecond {
		t.Fatalf("Interrupt did not charge CPU: %v", k.CPU.Busy)
	}
}

func TestDefaultCostModelSanity(t *testing.T) {
	c := DefaultCostModel()
	if c.SyscallEntry <= 0 || c.DriverPoll <= 0 || c.HTTPService <= 0 {
		t.Fatal("cost model has non-positive key costs")
	}
	// The hint check must be far cheaper than a driver poll, otherwise the
	// /dev/poll optimisation the paper measures would be meaningless.
	if c.HintCheck*5 > c.DriverPoll {
		t.Fatalf("HintCheck (%v) should be much cheaper than DriverPoll (%v)", c.HintCheck, c.DriverPoll)
	}
	// The per-event sigwaitinfo dequeue must cost at least one syscall entry;
	// that asymmetry with batched poll results drives Figure 11.
	if c.SigDequeue < c.SyscallEntry {
		t.Fatalf("SigDequeue (%v) should not be cheaper than a syscall entry (%v)", c.SigDequeue, c.SyscallEntry)
	}
	// Serving a request must dominate per-descriptor bookkeeping so the
	// unloaded server saturates near ~1000 req/s.
	if c.HTTPService < 100*core.Microsecond {
		t.Fatalf("HTTPService suspiciously small: %v", c.HTTPService)
	}
	if c.WriteCost(6*1024) <= 0 {
		t.Fatal("WriteCost(6KB) must be positive")
	}
	if c.WriteCost(0) != 0 || c.WriteCost(-1) != 0 {
		t.Fatal("WriteCost of non-positive sizes must be zero")
	}
	if c.WriteCost(2048) != 2*c.SockWritePerKB {
		t.Fatalf("WriteCost(2KB) = %v, want %v", c.WriteCost(2048), 2*c.SockWritePerKB)
	}
}

func TestCostModelClone(t *testing.T) {
	c := DefaultCostModel()
	d := c.Clone()
	d.DriverPoll = 42
	if c.DriverPoll == 42 {
		t.Fatal("Clone aliases the original")
	}
}

func TestProcInstallAndGet(t *testing.T) {
	k := NewKernel(nil)
	p := k.NewProc("test")
	f1, f2 := &fakeFile{}, &fakeFile{}
	fd1 := p.Install(f1)
	fd2 := p.Install(f2)
	if fd1.Num != 3 || fd2.Num != 4 {
		t.Fatalf("descriptor numbers: %d %d", fd1.Num, fd2.Num)
	}
	if p.NumFDs() != 2 {
		t.Fatalf("NumFDs = %d", p.NumFDs())
	}
	got, ok := p.Get(3)
	if !ok || got != fd1 {
		t.Fatal("Get(3) failed")
	}
	if _, ok := p.Get(99); ok {
		t.Fatal("Get(99) should fail")
	}
	fds := p.FDs()
	if len(fds) != 2 || fds[0] != 3 || fds[1] != 4 {
		t.Fatalf("FDs = %v", fds)
	}
}

func TestProcDescriptorReuseLowestFree(t *testing.T) {
	k := NewKernel(nil)
	p := k.NewProc("test")
	a := p.Install(&fakeFile{})
	b := p.Install(&fakeFile{})
	c := p.Install(&fakeFile{})
	_ = b
	if err := p.CloseFD(0, a.Num); err != nil {
		t.Fatal(err)
	}
	// POSIX requires the lowest unused number: the very next install must
	// recycle a's slot — the behaviour the stale-readiness generation
	// machinery exists to make safe — and carry a fresh generation.
	d := p.Install(&fakeFile{})
	if d.Num != a.Num {
		t.Fatalf("Install allocated %d, want recycled lowest free %d", d.Num, a.Num)
	}
	if d.Gen == a.Gen || d.Gen == 0 {
		t.Fatalf("recycled descriptor generation %d not distinct from %d", d.Gen, a.Gen)
	}
	e := p.Install(&fakeFile{})
	if e.Num != c.Num+1 {
		t.Fatalf("next install allocated %d, want %d", e.Num, c.Num+1)
	}
}

func TestProcCloseFD(t *testing.T) {
	k := NewKernel(nil)
	p := k.NewProc("test")
	f := &fakeFile{}
	fd := p.Install(f)
	if err := p.CloseFD(core.Time(7*core.Second), fd.Num); err != nil {
		t.Fatal(err)
	}
	if !f.closed || f.closedAt != core.Time(7*core.Second) {
		t.Fatal("underlying file not closed at the right time")
	}
	if !fd.Closed() {
		t.Fatal("FD not marked closed")
	}
	if fd.Poll() != core.POLLNVAL {
		t.Fatalf("Poll on closed fd = %v", fd.Poll())
	}
	if err := p.CloseFD(0, fd.Num); err != core.ErrBadFD {
		t.Fatalf("double close: %v", err)
	}
	if p.NumFDs() != 0 {
		t.Fatalf("NumFDs = %d", p.NumFDs())
	}
}

func TestFDWatchersFanOutAndRemoval(t *testing.T) {
	k := NewKernel(nil)
	p := k.NewProc("test")
	f := &fakeFile{}
	fd := p.Install(f)

	w1 := &recordingWatcher{}
	w2 := &recordingWatcher{removeSelf: true}
	fd.AddWatcher(w1)
	fd.AddWatcher(w1) // duplicate registration is a no-op
	fd.AddWatcher(w2)
	if fd.Watchers() != 2 {
		t.Fatalf("Watchers = %d", fd.Watchers())
	}

	f.setReady(core.Time(core.Millisecond), core.POLLIN)
	if len(w1.events) != 1 || w1.events[0] != core.POLLIN || w1.fds[0] != fd.Num {
		t.Fatalf("w1 events = %v fds = %v", w1.events, w1.fds)
	}
	if len(w2.events) != 1 {
		t.Fatalf("w2 events = %v", w2.events)
	}
	// w2 removed itself during delivery.
	if fd.Watchers() != 1 {
		t.Fatalf("Watchers after self-removal = %d", fd.Watchers())
	}
	f.setReady(core.Time(2*core.Millisecond), core.POLLIN|core.POLLOUT)
	if len(w1.events) != 2 || len(w2.events) != 1 {
		t.Fatalf("second notify: w1=%d w2=%d", len(w1.events), len(w2.events))
	}

	fd.RemoveWatcher(w1)
	if fd.Watchers() != 0 {
		t.Fatalf("Watchers after removal = %d", fd.Watchers())
	}
	// Removing an unregistered watcher is a no-op.
	fd.RemoveWatcher(w1)
}

func TestClosedFDDoesNotNotify(t *testing.T) {
	k := NewKernel(nil)
	p := k.NewProc("test")
	f := &fakeFile{}
	fd := p.Install(f)
	w := &recordingWatcher{}
	fd.AddWatcher(w)
	if err := p.CloseFD(0, fd.Num); err != nil {
		t.Fatal(err)
	}
	// The notifier was detached by CloseFD; even a direct notify on the FD is
	// suppressed for a closed descriptor.
	fd.Notify(0, core.POLLIN)
	if len(w.events) != 0 {
		t.Fatalf("closed fd delivered events: %v", w.events)
	}
}

func TestProcBatchChargesCPUAndRunsDeferred(t *testing.T) {
	k := NewKernel(nil)
	p := k.NewProc("server")
	var deferredAt, doneAt core.Time
	p.Batch(0, func() {
		p.Charge(100 * core.Microsecond)
		p.ChargeSyscall(0)
		p.Defer(func(now core.Time) { deferredAt = now })
	}, func(now core.Time) { doneAt = now })
	k.Sim.Run()

	want := core.Time(100*core.Microsecond + k.Cost.SyscallEntry)
	if doneAt != want {
		t.Fatalf("doneAt = %v, want %v", doneAt, want)
	}
	if deferredAt != want {
		t.Fatalf("deferredAt = %v, want %v", deferredAt, want)
	}
	if p.TotalCharged != 100*core.Microsecond+k.Cost.SyscallEntry {
		t.Fatalf("TotalCharged = %v", p.TotalCharged)
	}
	if p.InBatch() {
		t.Fatal("InBatch should be false after completion")
	}
}

func TestProcBatchesQueueOnCPU(t *testing.T) {
	k := NewKernel(nil)
	p := k.NewProc("server")
	q := k.NewProc("other")
	var first, second core.Time
	p.Batch(0, func() { p.Charge(50 * core.Microsecond) }, func(now core.Time) { first = now })
	q.Batch(0, func() { q.Charge(30 * core.Microsecond) }, func(now core.Time) { second = now })
	k.Sim.Run()
	if first != core.Time(50*core.Microsecond) {
		t.Fatalf("first = %v", first)
	}
	if second != core.Time(80*core.Microsecond) {
		t.Fatalf("second should queue behind first on the uniprocessor: %v", second)
	}
}

func TestProcNestedBatchPanics(t *testing.T) {
	k := NewKernel(nil)
	p := k.NewProc("server")
	defer func() {
		if recover() == nil {
			t.Error("nested Batch should panic")
		}
	}()
	p.Batch(0, func() {
		p.Batch(0, func() {}, nil)
	}, nil)
}

func TestProcDeferOutsideBatchRunsImmediately(t *testing.T) {
	k := NewKernel(nil)
	p := k.NewProc("server")
	ran := false
	p.Defer(func(core.Time) { ran = true })
	if !ran {
		t.Fatal("Defer outside a batch should run immediately")
	}
}

func TestProcChargeNegativeClamped(t *testing.T) {
	k := NewKernel(nil)
	p := k.NewProc("server")
	p.Charge(-5)
	if p.TotalCharged != 0 {
		t.Fatalf("TotalCharged = %v", p.TotalCharged)
	}
}

func TestDriverPollChargesCost(t *testing.T) {
	k := NewKernel(nil)
	p := k.NewProc("server")
	f := &fakeFile{ready: core.POLLIN}
	fd := p.Install(f)
	var got core.EventMask
	p.Batch(0, func() { got = fd.DriverPoll() }, nil)
	k.Sim.Run()
	if got != core.POLLIN {
		t.Fatalf("DriverPoll = %v", got)
	}
	if p.TotalCharged != k.Cost.DriverPoll {
		t.Fatalf("TotalCharged = %v, want %v", p.TotalCharged, k.Cost.DriverPoll)
	}
}

func TestTracers(t *testing.T) {
	rec := &RecordingTracer{}
	rec.Trace(core.Time(core.Second), "net", "packet %d", 7)
	rec.Trace(core.Time(2*core.Second), "cpu", "busy")
	if len(rec.Records) != 2 {
		t.Fatalf("Records = %d", len(rec.Records))
	}
	if got := rec.ByComponent("net"); len(got) != 1 || got[0].Message != "packet 7" {
		t.Fatalf("ByComponent = %+v", got)
	}

	var sb stringBuilder
	wt := NewWriterTracer(&sb)
	wt.Filter = func(c string) bool { return c == "keep" }
	wt.Trace(0, "drop", "x")
	wt.Trace(0, "keep", "y %d", 1)
	if wt.Lines != 1 {
		t.Fatalf("Lines = %d", wt.Lines)
	}
	if sb.String() == "" {
		t.Fatal("nothing written")
	}
	NopTracer{}.Trace(0, "x", "y") // must not panic
}

// stringBuilder is a tiny io.Writer so the test does not need strings.Builder's
// extra methods.
type stringBuilder struct{ b []byte }

func (s *stringBuilder) Write(p []byte) (int, error) { s.b = append(s.b, p...); return len(p), nil }
func (s *stringBuilder) String() string              { return string(s.b) }
