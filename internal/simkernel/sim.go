// Package simkernel provides the discrete-event simulation substrate on which
// the reproduction runs: a virtual clock and event queue, a simulated
// uniprocessor CPU with a calibrated cost model, and a lightweight process
// model (file-descriptor table, readiness watchers, wait queues) that the
// network simulator and the event-notification mechanisms plug into.
//
// The real paper measured a Linux 2.2.14 kernel on a 400 MHz AMD K6-2. A Go
// library cannot reproduce that kernel interface directly, so this package
// reproduces the thing the evaluation actually depends on: where CPU time goes
// on a saturated uniprocessor as the interest set grows. See DESIGN.md §2.
package simkernel

import (
	"container/heap"
	"fmt"

	"repro/internal/core"
)

// Event is a scheduled callback in the simulation.
type event struct {
	at  core.Time
	seq uint64
	fn  func(now core.Time)
}

// eventHeap orders events by time, breaking ties by insertion order so the
// simulation is deterministic.
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Simulator is a deterministic discrete-event scheduler over virtual time.
// The zero value is not usable; call NewSimulator.
type Simulator struct {
	now     core.Time
	queue   eventHeap
	seq     uint64
	stopped bool

	// Executed counts events dispatched since construction.
	Executed int64
}

// NewSimulator returns an empty simulator positioned at virtual time zero.
func NewSimulator() *Simulator {
	s := &Simulator{}
	heap.Init(&s.queue)
	return s
}

// Now returns the current virtual time.
func (s *Simulator) Now() core.Time { return s.now }

// Pending returns the number of scheduled, not yet executed events.
func (s *Simulator) Pending() int { return len(s.queue) }

// At schedules fn to run at the absolute virtual instant t. Scheduling in the
// past is a programming error and panics, because it would break causality.
func (s *Simulator) At(t core.Time, fn func(now core.Time)) {
	if fn == nil {
		panic("simkernel: At with nil callback")
	}
	if t < s.now {
		panic(fmt.Sprintf("simkernel: scheduling into the past (%v < %v)", t, s.now))
	}
	s.seq++
	heap.Push(&s.queue, &event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn to run d after the current virtual time. A negative d is
// treated as zero.
func (s *Simulator) After(d core.Duration, fn func(now core.Time)) {
	if d < 0 {
		d = 0
	}
	s.At(s.now.Add(d), fn)
}

// Stop makes Run and RunUntil return after the currently executing event.
func (s *Simulator) Stop() { s.stopped = true }

// Run executes events until the queue is empty or Stop is called. It returns
// the final virtual time.
func (s *Simulator) Run() core.Time { return s.RunUntil(core.Time(1<<62 - 1)) }

// RunUntil executes events with timestamps not after deadline, or until the
// queue drains or Stop is called. The clock is left at the time of the last
// executed event (or at deadline if it was reached with events remaining).
func (s *Simulator) RunUntil(deadline core.Time) core.Time {
	s.stopped = false
	for !s.stopped && len(s.queue) > 0 {
		next := s.queue[0]
		if next.at > deadline {
			s.now = deadline
			return s.now
		}
		heap.Pop(&s.queue)
		s.now = next.at
		s.Executed++
		next.fn(s.now)
	}
	return s.now
}

// Step executes exactly one pending event, if any, and reports whether one was
// executed. It is primarily useful in tests.
func (s *Simulator) Step() bool {
	if len(s.queue) == 0 {
		return false
	}
	next := heap.Pop(&s.queue).(*event)
	s.now = next.at
	s.Executed++
	next.fn(s.now)
	return true
}
