// Package simkernel provides the discrete-event simulation substrate on which
// the reproduction runs: a virtual clock and event queue, a simulated
// uniprocessor CPU with a calibrated cost model, and a lightweight process
// model (file-descriptor table, readiness watchers, wait queues) that the
// network simulator and the event-notification mechanisms plug into.
//
// The real paper measured a Linux 2.2.14 kernel on a 400 MHz AMD K6-2. A Go
// library cannot reproduce that kernel interface directly, so this package
// reproduces the thing the evaluation actually depends on: where CPU time goes
// on a saturated uniprocessor as the interest set grows. See DESIGN.md §2.
package simkernel

import (
	"fmt"

	"repro/internal/core"
)

// event is a scheduled callback in the simulation. Events are stored by value
// inside the Simulator's queues — no per-schedule allocation, no interface
// boxing — because scheduling is the hottest operation in the whole system
// (every syscall batch, every network segment and every timer goes through
// it). Only the callback closure itself may allocate, at the caller's site.
type event struct {
	at  core.Time
	seq uint64
	fn  func(now core.Time)
}

// eventBefore is the queue ordering: time first, then insertion order, so the
// simulation is deterministic. Sequence numbers are unique, which makes the
// order total.
func eventBefore(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// Simulator is a deterministic discrete-event scheduler over virtual time.
// The zero value is not usable; call NewSimulator.
//
// Internally the pending set is split between a hand-rolled inline-value
// 4-ary min-heap (ordered by (at, seq)) and a same-instant FIFO ring: events
// scheduled for exactly the current virtual instant — batch completions on an
// idle CPU, immediate wakeups, deferred effects — skip the heap entirely.
// Both structures reuse their backing storage across the run, so steady-state
// scheduling performs no allocation at all. Pop order is the global (at, seq)
// minimum across both, bit-identical to a single binary heap.
type Simulator struct {
	now     core.Time
	seq     uint64
	stopped bool

	// heap is the 4-ary min-heap (children of i at 4i+1..4i+4). A 4-ary
	// layout halves the tree depth of a binary heap and keeps sibling
	// comparisons inside one or two cache lines of the inline event values.
	heap []event

	// nowq is the same-instant fast path: a FIFO ring (head index into a
	// reused slice) of events whose scheduled time equalled the current
	// virtual time at At-time. The clock only moves forward and sequence
	// numbers only grow, so the ring is always sorted by (at, seq) and its
	// head is a valid candidate for the global minimum.
	nowq     []event
	nowqHead int

	// Executed counts events dispatched since construction.
	Executed int64

	// shard is the sharded (parallel) execution engine, nil unless
	// EnableSharding was called. When set, all scheduling goes through lane
	// handles (LaneQ) and RunUntil drives the epoch loop in shard.go; the
	// single-queue fields above stay unused so the legacy path is untouched.
	shard *shardEngine
}

// NewSimulator returns an empty simulator positioned at virtual time zero.
func NewSimulator() *Simulator {
	return &Simulator{}
}

// Now returns the current virtual time.
func (s *Simulator) Now() core.Time { return s.now }

// Pending returns the number of scheduled, not yet executed events.
func (s *Simulator) Pending() int {
	if s.shard != nil {
		n := 0
		for _, ln := range s.shard.lanes {
			n += ln.pending()
		}
		for i := range s.shard.rings {
			n += len(s.shard.rings[i].recs)
		}
		return n
	}
	return len(s.heap) + len(s.nowq) - s.nowqHead
}

// At schedules fn to run at the absolute virtual instant t. Scheduling in the
// past is a programming error and panics, because it would break causality.
func (s *Simulator) At(t core.Time, fn func(now core.Time)) {
	if fn == nil {
		panic("simkernel: At with nil callback")
	}
	if s.shard != nil {
		panic("simkernel: direct At on a sharded simulator (schedule through a LaneQ handle)")
	}
	if t < s.now {
		panic(fmt.Sprintf("simkernel: scheduling into the past (%v < %v)", t, s.now))
	}
	s.seq++
	if t == s.now {
		s.nowq = append(s.nowq, event{at: t, seq: s.seq, fn: fn})
		return
	}
	s.heapPush(event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn to run d after the current virtual time. A negative d is
// treated as zero.
func (s *Simulator) After(d core.Duration, fn func(now core.Time)) {
	if d < 0 {
		d = 0
	}
	s.At(s.now.Add(d), fn)
}

// Stop makes Run and RunUntil return after the currently executing event.
func (s *Simulator) Stop() { s.stopped = true }

// Run executes events until the queue is empty or Stop is called. It returns
// the final virtual time.
func (s *Simulator) Run() core.Time { return s.RunUntil(core.Time(1<<62 - 1)) }

// RunUntil executes events with timestamps not after deadline, or until the
// queue drains or Stop is called. The clock is left at the time of the last
// executed event (or at deadline if it was reached with events remaining).
func (s *Simulator) RunUntil(deadline core.Time) core.Time {
	if s.shard != nil {
		return s.shard.run(deadline)
	}
	s.stopped = false
	for !s.stopped {
		e, ok := s.pop(deadline)
		if !ok {
			break
		}
		s.now = e.at
		s.Executed++
		e.fn(s.now)
	}
	return s.now
}

// Step executes exactly one pending event, if any, and reports whether one was
// executed. It is primarily useful in tests.
func (s *Simulator) Step() bool {
	if s.shard != nil {
		panic("simkernel: Step on a sharded simulator")
	}
	e, ok := s.pop(core.Time(1<<62 - 1))
	if !ok {
		return false
	}
	s.now = e.at
	s.Executed++
	e.fn(s.now)
	return true
}

// pop removes and returns the globally earliest pending event. If that event
// lies beyond deadline it is left queued, the clock advances to deadline, and
// ok is false; ok is also false on an empty queue.
func (s *Simulator) pop(deadline core.Time) (e event, ok bool) {
	useNowq := s.nowqHead < len(s.nowq)
	if len(s.heap) > 0 {
		if !useNowq || eventBefore(&s.heap[0], &s.nowq[s.nowqHead]) {
			if s.heap[0].at > deadline {
				s.now = deadline
				return event{}, false
			}
			return s.heapPop(), true
		}
	}
	if !useNowq {
		return event{}, false
	}
	head := &s.nowq[s.nowqHead]
	if head.at > deadline {
		s.now = deadline
		return event{}, false
	}
	e = *head
	*head = event{} // release the closure for the collector
	s.nowqHead++
	if s.nowqHead == len(s.nowq) {
		// Drained: rewind the ring so the backing array is reused.
		s.nowq = s.nowq[:0]
		s.nowqHead = 0
	}
	return e, true
}

// heapPush inserts e, sifting the insertion hole up (moving parents down
// rather than swapping) until the heap property holds.
func (s *Simulator) heapPush(e event) {
	h := append(s.heap, event{})
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if eventBefore(&h[p], &e) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = e
	s.heap = h
}

// heapPop removes and returns the minimum, sifting the former last element
// down from the root.
func (s *Simulator) heapPop() event {
	h := s.heap
	min := h[0]
	n := len(h) - 1
	last := h[n]
	h[n] = event{} // release the closure for the collector
	h = h[:n]
	if n > 0 {
		i := 0
		for {
			c := 4*i + 1
			if c >= n {
				break
			}
			end := c + 4
			if end > n {
				end = n
			}
			m := c
			for j := c + 1; j < end; j++ {
				if eventBefore(&h[j], &h[m]) {
					m = j
				}
			}
			if eventBefore(&last, &h[m]) {
				break
			}
			h[i] = h[m]
			i = m
		}
		h[i] = last
	}
	s.heap = h
	return min
}
