package simkernel

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/core"
)

const testLookahead = 100 * core.Microsecond

// runChainWorkload drives a deterministic cross-lane workload through a
// sharded simulator: chains of events hop between lanes with pseudo-random
// (but seed-determined) delays of at least the lookahead, occasionally
// spawning same-instant local events to exercise the per-lane FIFO ring. It
// returns the per-lane execution logs — the sequence of events each lane
// dispatched, in order — and the lane-agnostic sorted multiset of all events.
func runChainWorkload(t *testing.T, lanes, workers int) (perLane []string, multiset []string) {
	t.Helper()
	sim := NewSimulator()
	sim.EnableSharding(lanes, workers, testLookahead)
	nLanes := sim.NumLanes()
	qs := make([]Q, nLanes)
	for i := range qs {
		qs[i] = sim.LaneQ(i)
	}
	logs := make([][]string, nLanes)

	la := core.Duration(testLookahead)
	var fire func(self Q, chain, hop int, rng uint64) func(core.Time)
	fire = func(self Q, chain, hop int, rng uint64) func(core.Time) {
		return func(now core.Time) {
			lane := self.LaneIndex()
			logs[lane] = append(logs[lane], fmt.Sprintf("c%d h%d @%d", chain, hop, now))
			if hop == 0 {
				return
			}
			rng = rng*6364136223846793005 + 1442695040888963407
			next := int((rng >> 33) % uint64(nLanes))
			rng = rng*6364136223846793005 + 1442695040888963407
			delay := la + core.Duration((rng>>33)%uint64(3*la))
			if (rng>>13)&7 == 0 {
				// Same-instant local event: lands on the lane's FIFO ring.
				self.At(now, func(z core.Time) {
					logs[lane] = append(logs[lane], fmt.Sprintf("c%d h%dz @%d", chain, hop, z))
				})
			}
			self.Post(qs[next], now.Add(delay), fire(qs[next], chain, hop-1, rng))
		}
	}
	for c := 0; c < 40; c++ {
		start := core.Time(c%7) * core.Time(core.Microsecond)
		home := qs[c%nLanes]
		home.At(start, fire(home, c, 6, uint64(c+1)))
	}
	sim.Run()
	if p := sim.Pending(); p != 0 {
		t.Fatalf("lanes=%d workers=%d: %d events still pending after Run", lanes, workers, p)
	}

	perLane = make([]string, nLanes)
	for i, l := range logs {
		perLane[i] = strings.Join(l, "\n")
		multiset = append(multiset, l...)
	}
	sort.Strings(multiset)
	return perLane, multiset
}

// TestShardedDeterministicAcrossWorkerCounts is the engine's core invariant:
// with the lane count fixed, every worker count must execute the identical
// per-lane event sequence — byte-identical logs — because workers only claim
// lanes, never reorder them. Run under -race this also exercises the barrier
// and ring synchronization with real goroutine parallelism.
func TestShardedDeterministicAcrossWorkerCounts(t *testing.T) {
	const lanes = 8
	base, baseAll := runChainWorkload(t, lanes, 1)
	for _, workers := range []int{2, 4, 8} {
		got, gotAll := runChainWorkload(t, lanes, workers)
		for i := range base {
			if got[i] != base[i] {
				t.Fatalf("workers=%d: lane %d log diverges from workers=1\nworkers=1:\n%s\nworkers=%d:\n%s",
					workers, i, base[i], workers, got[i])
			}
		}
		if strings.Join(gotAll, "|") != strings.Join(baseAll, "|") {
			t.Fatalf("workers=%d: event multiset diverges from workers=1", workers)
		}
	}
}

// TestShardedMatchesSingleLane checks that sharding changes where events run
// but not what runs: the lane-agnostic multiset of (chain, hop, time) is
// identical between a single-lane and an 8-lane partitioning of the same
// workload.
func TestShardedMatchesSingleLane(t *testing.T) {
	_, one := runChainWorkload(t, 1, 1)
	_, eight := runChainWorkload(t, 8, 4)
	if len(one) != len(eight) {
		t.Fatalf("single-lane executed %d events, 8-lane %d", len(one), len(eight))
	}
	for i := range one {
		if one[i] != eight[i] {
			t.Fatalf("event %d: single-lane %q vs 8-lane %q", i, one[i], eight[i])
		}
	}
}

// TestShardedLookaheadViolationPanics pins the safety assert: a cross-lane
// post closer than the lookahead window must panic rather than silently break
// the conservative-horizon guarantee.
func TestShardedLookaheadViolationPanics(t *testing.T) {
	sim := NewSimulator()
	sim.EnableSharding(4, 1, testLookahead)
	q0, q1 := sim.LaneQ(0), sim.LaneQ(1)
	q0.At(core.Time(core.Millisecond), func(now core.Time) {
		q0.Post(q1, now.Add(core.Duration(testLookahead)/2), func(core.Time) {})
	})
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("cross-lane post inside the lookahead window did not panic")
		}
	}()
	sim.Run()
}

// TestShardedDirectSchedulingPanics: once sharded, the global At must refuse —
// every missed call-site conversion should fail loudly, not corrupt the run.
func TestShardedDirectSchedulingPanics(t *testing.T) {
	sim := NewSimulator()
	sim.EnableSharding(2, 1, testLookahead)
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("direct At on a sharded simulator did not panic")
		}
	}()
	sim.At(0, func(core.Time) {})
}

// TestShardedDeadlineAndResume checks RunUntil's contract survives sharding:
// events beyond the deadline stay queued, the clock parks at the deadline,
// and a later RunUntil resumes them.
func TestShardedDeadlineAndResume(t *testing.T) {
	sim := NewSimulator()
	sim.EnableSharding(2, 2, testLookahead)
	q0, q1 := sim.LaneQ(0), sim.LaneQ(1)
	var fired []string
	q0.At(core.Time(1*core.Millisecond), func(now core.Time) {
		fired = append(fired, "early")
		q0.Post(q1, now.Add(10*core.Millisecond), func(core.Time) { fired = append(fired, "late") })
	})
	sim.RunUntil(core.Time(5 * core.Millisecond))
	if len(fired) != 1 || fired[0] != "early" {
		t.Fatalf("fired %v before deadline, want [early]", fired)
	}
	if sim.Now() != core.Time(5*core.Millisecond) {
		t.Fatalf("clock at %v, want parked at deadline", sim.Now())
	}
	if sim.Pending() != 1 {
		t.Fatalf("pending %d, want 1", sim.Pending())
	}
	sim.Run()
	if len(fired) != 2 || fired[1] != "late" {
		t.Fatalf("fired %v after resume, want [early late]", fired)
	}
}

// TestShardedBarrierHookStops checks OnBarrier hooks run against quiescent
// state and can stop the run (the load generator's completion path).
func TestShardedBarrierHookStops(t *testing.T) {
	sim := NewSimulator()
	sim.EnableSharding(4, 2, testLookahead)
	qs := make([]Q, 4)
	for i := range qs {
		qs[i] = sim.LaneQ(i)
	}
	counts := make([]int64, 4)
	var chain func(q Q, hops int) func(core.Time)
	chain = func(q Q, hops int) func(core.Time) {
		return func(now core.Time) {
			counts[q.LaneIndex()]++
			if hops > 0 {
				next := qs[(q.LaneIndex()+1)%4]
				q.Post(next, now.Add(core.Duration(testLookahead)), chain(next, hops-1))
			}
		}
	}
	for i := range qs {
		qs[i].At(0, chain(qs[i], 1000))
	}
	var total int64
	sim.OnBarrier(func(core.Time) {
		total = counts[0] + counts[1] + counts[2] + counts[3]
		if total >= 100 {
			sim.Stop()
		}
	})
	sim.Run()
	if total < 100 {
		t.Fatalf("hook saw %d events at exit, want >= 100", total)
	}
	if sim.Pending() == 0 {
		t.Fatal("Stop drained the queue; expected remaining events")
	}
}
