package simkernel

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/core"
)

func TestSimulatorRunsEventsInOrder(t *testing.T) {
	s := NewSimulator()
	var order []int
	s.At(core.Time(30*core.Microsecond), func(core.Time) { order = append(order, 3) })
	s.At(core.Time(10*core.Microsecond), func(core.Time) { order = append(order, 1) })
	s.At(core.Time(20*core.Microsecond), func(core.Time) { order = append(order, 2) })
	end := s.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if end != core.Time(30*core.Microsecond) {
		t.Fatalf("end = %v", end)
	}
	if s.Executed != 3 {
		t.Fatalf("Executed = %d", s.Executed)
	}
}

func TestSimulatorTieBreakIsFIFO(t *testing.T) {
	s := NewSimulator()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(core.Time(5*core.Microsecond), func(core.Time) { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-break not FIFO: %v", order)
		}
	}
}

func TestSimulatorAfterAndNow(t *testing.T) {
	s := NewSimulator()
	var seen core.Time
	s.After(2*core.Millisecond, func(now core.Time) {
		seen = now
		s.After(3*core.Millisecond, func(now core.Time) { seen = now })
	})
	s.Run()
	if seen != core.Time(5*core.Millisecond) {
		t.Fatalf("nested After: got %v", seen)
	}
}

func TestSimulatorAfterNegativeIsImmediate(t *testing.T) {
	s := NewSimulator()
	ran := false
	s.After(-5, func(core.Time) { ran = true })
	s.Run()
	if !ran {
		t.Fatal("negative After never ran")
	}
}

func TestSimulatorSchedulingInPastPanics(t *testing.T) {
	s := NewSimulator()
	s.At(core.Time(core.Second), func(now core.Time) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic scheduling into the past")
			}
		}()
		s.At(now-1, func(core.Time) {})
	})
	s.Run()
}

func TestSimulatorNilCallbackPanics(t *testing.T) {
	s := NewSimulator()
	defer func() {
		if recover() == nil {
			t.Error("expected panic for nil callback")
		}
	}()
	s.At(0, nil)
}

func TestSimulatorRunUntil(t *testing.T) {
	s := NewSimulator()
	var ran []int
	s.At(core.Time(1*core.Second), func(core.Time) { ran = append(ran, 1) })
	s.At(core.Time(2*core.Second), func(core.Time) { ran = append(ran, 2) })
	s.At(core.Time(3*core.Second), func(core.Time) { ran = append(ran, 3) })
	now := s.RunUntil(core.Time(2 * core.Second))
	if len(ran) != 2 {
		t.Fatalf("ran = %v", ran)
	}
	if now != core.Time(2*core.Second) {
		t.Fatalf("now = %v", now)
	}
	if s.Pending() != 1 {
		t.Fatalf("pending = %d", s.Pending())
	}
	// Resuming runs the rest.
	s.Run()
	if len(ran) != 3 {
		t.Fatalf("after resume ran = %v", ran)
	}
}

func TestSimulatorStop(t *testing.T) {
	s := NewSimulator()
	count := 0
	for i := 1; i <= 5; i++ {
		s.At(core.Time(i)*core.Time(core.Second), func(core.Time) {
			count++
			if count == 2 {
				s.Stop()
			}
		})
	}
	s.Run()
	if count != 2 {
		t.Fatalf("count = %d, want 2 (Stop should halt the loop)", count)
	}
	if s.Pending() != 3 {
		t.Fatalf("pending = %d", s.Pending())
	}
}

func TestSimulatorStep(t *testing.T) {
	s := NewSimulator()
	if s.Step() {
		t.Fatal("Step on empty queue should report false")
	}
	ran := 0
	s.At(core.Time(core.Millisecond), func(core.Time) { ran++ })
	if !s.Step() {
		t.Fatal("Step should execute the pending event")
	}
	if ran != 1 {
		t.Fatalf("ran = %d", ran)
	}
}

// Property: regardless of insertion order, events execute in nondecreasing
// time order and virtual time is monotone.
func TestSimulatorMonotoneProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewSimulator()
		count := int(n%64) + 1
		times := make([]core.Time, count)
		var executed []core.Time
		for i := 0; i < count; i++ {
			times[i] = core.Time(rng.Int63n(int64(10 * core.Second)))
			at := times[i]
			s.At(at, func(now core.Time) { executed = append(executed, now) })
		}
		s.Run()
		if len(executed) != count {
			return false
		}
		sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
		for i := range times {
			if executed[i] != times[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
