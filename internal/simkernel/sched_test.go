package simkernel

import (
	"testing"

	"repro/internal/core"
)

func TestSchedulerUniprocessorIsDefault(t *testing.T) {
	k := NewKernel(nil)
	if k.Sched.NumCPU() != 1 {
		t.Fatalf("NumCPU = %d, want 1", k.Sched.NumCPU())
	}
	if k.CPU != k.Sched.CPU(0) {
		t.Fatal("Kernel.CPU is not scheduler CPU 0")
	}
	p := k.NewProc("p")
	if p.CPU() != k.CPU {
		t.Fatal("default proc not pinned to CPU 0")
	}
}

// Two processes pinned to different CPUs execute their batches concurrently
// in virtual time: both finish as if they had the machine to themselves.
func TestSchedulerBatchesOverlapAcrossCPUs(t *testing.T) {
	k := NewKernelSMP(nil, 2)
	p0 := k.NewProcOn("w0", k.Sched.CPU(0))
	p1 := k.NewProcOn("w1", k.Sched.CPU(1))

	cost := 10 * core.Millisecond
	var done0, done1 core.Time
	p0.Batch(0, func() { p0.Charge(cost) }, func(now core.Time) { done0 = now })
	p1.Batch(0, func() { p1.Charge(cost) }, func(now core.Time) { done1 = now })
	k.Sim.Run()

	if done0 != core.Time(cost) || done1 != core.Time(cost) {
		t.Fatalf("batches serialised across CPUs: done0=%v done1=%v, want both %v", done0, done1, core.Time(cost))
	}
}

// The same two batches on one CPU serialise first-come first-served — the
// uniprocessor contention the paper measures, preserved per core.
func TestSchedulerSameCPUStillSerialises(t *testing.T) {
	k := NewKernelSMP(nil, 2)
	p0 := k.NewProcOn("w0", k.Sched.CPU(0))
	p1 := k.NewProcOn("w1", k.Sched.CPU(0))

	cost := 10 * core.Millisecond
	var done0, done1 core.Time
	p0.Batch(0, func() { p0.Charge(cost) }, func(now core.Time) { done0 = now })
	p1.Batch(0, func() { p1.Charge(cost) }, func(now core.Time) { done1 = now })
	k.Sim.Run()

	if done0 != core.Time(cost) || done1 != core.Time(2*cost) {
		t.Fatalf("same-CPU batches did not serialise: done0=%v done1=%v", done0, done1)
	}
	if k.Sched.CPU(1).Jobs != 0 {
		t.Fatal("work leaked onto the idle CPU")
	}
}

func TestInterruptOnSteersToCPU(t *testing.T) {
	k := NewKernelSMP(nil, 2)
	k.InterruptOn(k.Sched.CPU(1), 0, core.Millisecond, nil)
	k.Interrupt(0, core.Millisecond, nil) // default target: CPU 0
	k.InterruptOn(nil, 0, core.Millisecond, nil)
	if k.Sched.CPU(0).Jobs != 2 || k.Sched.CPU(1).Jobs != 1 {
		t.Fatalf("jobs = %d,%d; want 2,1", k.Sched.CPU(0).Jobs, k.Sched.CPU(1).Jobs)
	}
}

// Utilisation over the work window is a true ratio: <= 1 on every CPU for any
// correctly charged run, with no clamp hiding violations.
func TestSchedulerUtilizationInvariant(t *testing.T) {
	k := NewKernelSMP(nil, 3)
	p0 := k.NewProcOn("w0", k.Sched.CPU(0))
	for i := 0; i < 10; i++ {
		p0.Batch(k.Now(), func() { p0.Charge(3 * core.Millisecond) }, nil)
		k.Sim.Run()
	}
	k.InterruptOn(k.Sched.CPU(1), k.Now(), 40*core.Millisecond, nil)
	for i, u := range k.Sched.Utilizations(k.Now()) {
		if u < 0 || u > 1 {
			t.Fatalf("CPU %d utilisation %v outside [0,1]", i, u)
		}
	}
	if us := k.Sched.Utilizations(k.Now()); us[2] != 0 {
		t.Fatalf("idle CPU utilisation = %v, want 0", us[2])
	}
	if got := k.Sched.BusyUntil(); got != k.Sched.CPU(1).BusyUntil() {
		t.Fatalf("Scheduler.BusyUntil = %v, want CPU 1's %v", got, k.Sched.CPU(1).BusyUntil())
	}
}
