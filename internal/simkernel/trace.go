package simkernel

import (
	"fmt"
	"io"
	"sync"

	"repro/internal/core"
)

// Tracer receives structured trace records from the simulation. Tracing is
// optional and disabled by default (NopTracer); cmd/httpsim can enable a
// WriterTracer for debugging experiment runs.
type Tracer interface {
	Trace(now core.Time, component, format string, args ...interface{})
}

// NopTracer discards all trace records.
type NopTracer struct{}

// Trace implements Tracer by doing nothing.
func (NopTracer) Trace(core.Time, string, string, ...interface{}) {}

// WriterTracer formats trace records as lines on an io.Writer. It is safe for
// use from multiple goroutines, although the simulation itself is single
// threaded.
type WriterTracer struct {
	mu sync.Mutex
	W  io.Writer
	// Filter, when non-nil, limits output to records whose component it
	// accepts.
	Filter func(component string) bool
	// Lines counts records written.
	Lines int64
}

// NewWriterTracer returns a tracer writing to w.
func NewWriterTracer(w io.Writer) *WriterTracer { return &WriterTracer{W: w} }

// Trace implements Tracer.
func (t *WriterTracer) Trace(now core.Time, component, format string, args ...interface{}) {
	if t.Filter != nil && !t.Filter(component) {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	fmt.Fprintf(t.W, "%12.6f %-10s %s\n", now.Seconds(), component, fmt.Sprintf(format, args...))
	t.Lines++
}

// RecordingTracer stores trace records in memory for assertions in tests.
type RecordingTracer struct {
	Records []TraceRecord
}

// TraceRecord is one captured trace entry.
type TraceRecord struct {
	At        core.Time
	Component string
	Message   string
}

// Trace implements Tracer.
func (t *RecordingTracer) Trace(now core.Time, component, format string, args ...interface{}) {
	t.Records = append(t.Records, TraceRecord{At: now, Component: component, Message: fmt.Sprintf(format, args...)})
}

// ByComponent returns the captured records for one component.
func (t *RecordingTracer) ByComponent(component string) []TraceRecord {
	var out []TraceRecord
	for _, r := range t.Records {
		if r.Component == component {
			out = append(out, r)
		}
	}
	return out
}
