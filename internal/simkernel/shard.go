package simkernel

// Sharded (parallel) execution engine: a conservative parallel discrete-event
// core in the Chandy–Misra–Bryant style. The pending-event set is split across
// a fixed number of lanes (shards), each with its own clock and its own copy
// of sim.go's split queue (inline 4-ary heap + same-instant FIFO ring). Real
// goroutines execute lanes in parallel between barriers: in each epoch every
// lane first drains its inbox rings, then executes events strictly below a
// conservative horizon derived from the other lanes' earliest pending events
// plus the simulation's lookahead (the minimum cross-lane delivery latency —
// for the network simulator, half the minimum RTT).
//
// Determinism invariants (DESIGN.md §12):
//
//   - The lane count is fixed by the experiment configuration, never by the
//     worker (thread) count. Workers claim lanes dynamically, but a lane's
//     event sequence depends only on lane state, so any worker interleaving
//     executes the identical schedule.
//   - Cross-lane events travel through per-(src,dst) rings, appended in source
//     execution order and drained at the next barrier in ascending source-lane
//     order. Drained events receive destination-local sequence numbers at
//     drain time, so the merged order is pinned by (at, srcLane, postSeq) —
//     identical for every worker count.
//   - A cross-lane post must be scheduled at least `lookahead` past the
//     sender's clock (enforced by panic). Combined with the horizon rule this
//     guarantees no lane ever executes an instant that a not-yet-delivered
//     event could precede.
import (
	"fmt"
	"runtime"
	"sync/atomic"

	"repro/internal/core"
)

type shardLane struct {
	idx int
	now core.Time
	seq uint64

	// heap + nowq duplicate the Simulator's split-queue idiom (see sim.go);
	// the legacy single-queue path stays untouched so -threads 1 runs remain
	// bit-identical to prior releases.
	heap     []event
	nowq     []event
	nowqHead int

	executed int64

	next    core.Time // earliest pending instant, published at each barrier
	horizon core.Time // exclusive execution bound for the current window
}

// farFuture is the sentinel "no pending event" instant (matching Run's
// effectively-unbounded deadline in sim.go).
const farFuture = core.Time(1<<62 - 1)

// Q is a scheduling handle bound to one lane of a sharded simulator — or, on
// an unsharded simulator, a thin delegate to the global queue. All simulation
// code schedules through a Q so that the same source runs single-threaded and
// sharded without modification. A Q is a small value; copy it freely.
type Q struct {
	s    *Simulator
	lane *shardLane
}

// Sim returns the underlying simulator.
func (q Q) Sim() *Simulator { return q.s }

// Now returns the lane's virtual clock (the global clock when unsharded).
// During a window a lane's clock is the timestamp of its currently executing
// event, which may differ between lanes by up to the lookahead window.
func (q Q) Now() core.Time {
	if q.lane != nil {
		return q.lane.now
	}
	return q.s.now
}

// LaneIndex reports which lane the handle is bound to (0 when unsharded).
func (q Q) LaneIndex() int {
	if q.lane != nil {
		return q.lane.idx
	}
	return 0
}

// At schedules fn on this handle's lane at absolute instant t. It must only
// be called from code executing on this lane (or during setup, before the
// engine runs): lane queues are single-writer by construction. Cross-lane
// scheduling goes through Post.
func (q Q) At(t core.Time, fn func(now core.Time)) {
	if q.lane != nil {
		q.lane.at(t, fn)
		return
	}
	q.s.At(t, fn)
}

// After schedules fn d after the lane's current instant (negative d is zero).
func (q Q) After(d core.Duration, fn func(now core.Time)) {
	if d < 0 {
		d = 0
	}
	q.At(q.Now().Add(d), fn)
}

// Post schedules fn onto dst's lane at absolute instant t, from code executing
// on q's lane. Same-lane (and unsharded) posts are ordinary At calls;
// cross-lane posts are buffered in the (src,dst) ring and become visible at
// the next barrier. t must be at least the sender's clock plus the engine's
// lookahead — the invariant that makes conservative windows safe — and the
// engine panics loudly on violations rather than corrupting the schedule.
func (q Q) Post(dst Q, t core.Time, fn func(now core.Time)) {
	if q.lane == nil || dst.lane == nil || q.lane == dst.lane {
		dst.At(t, fn)
		return
	}
	sh := q.s.shard
	if t < q.lane.now.Add(sh.lookahead) {
		panic(fmt.Sprintf(
			"simkernel: cross-lane post violates lookahead: t=%d < now=%d + lookahead=%d (lane %d -> %d)",
			t, q.lane.now, sh.lookahead, q.lane.idx, dst.lane.idx))
	}
	ring := &sh.rings[q.lane.idx*len(sh.lanes)+dst.lane.idx]
	ring.recs = append(ring.recs, postRec{at: t, fn: fn})
}

// postRec is one buffered cross-lane event.
type postRec struct {
	at core.Time
	fn func(now core.Time)
}

// postRing is the (src,dst) buffer, padded so that neighbouring rings' slice
// headers do not share a cache line while different source lanes append.
type postRing struct {
	recs []postRec
	_    [40]byte
}

// spinBarrier is a generation-counted spin barrier. The last goroutine to
// arrive runs the serial section (horizon computation, barrier hooks) before
// releasing the rest; the generation bump publishes the serial section's
// writes to every waiter.
type spinBarrier struct {
	n       int32
	arrived atomic.Int32
	gen     atomic.Uint64
}

func (b *spinBarrier) await(last func()) {
	g := b.gen.Load()
	if b.arrived.Add(1) == b.n {
		b.arrived.Store(0)
		if last != nil {
			last()
		}
		b.gen.Add(1)
		return
	}
	for spins := 0; b.gen.Load() == g; spins++ {
		if spins&63 == 63 {
			runtime.Gosched()
		}
	}
}

// shardEngine holds the sharded execution state hanging off a Simulator.
type shardEngine struct {
	s         *Simulator
	lanes     []*shardLane
	rings     []postRing // len lanes², indexed src*S+dst
	lookahead core.Duration
	workers   int
	hooks     []func(now core.Time)

	deadline core.Time
	exit     bool
	exitNow  core.Time

	claimDrain atomic.Int64
	claimRun   atomic.Int64
	barrier    spinBarrier
}

// EnableSharding splits the simulator into the given number of lanes executed
// by the given number of worker goroutines, with the given lookahead (the
// minimum latency of any cross-lane interaction; must be positive). It must
// be called on a fresh simulator, before any event is scheduled. The lane
// count — not the worker count — determines the schedule, so runs with
// different worker counts over the same lane count are bit-identical.
func (s *Simulator) EnableSharding(lanes, workers int, lookahead core.Duration) {
	if s.shard != nil {
		panic("simkernel: EnableSharding called twice")
	}
	if s.now != 0 || len(s.heap) > 0 || len(s.nowq) > 0 {
		panic("simkernel: EnableSharding on a simulator already in use")
	}
	if lookahead <= 0 {
		panic("simkernel: EnableSharding requires a positive lookahead")
	}
	if lanes < 1 {
		lanes = 1
	}
	if workers < 1 {
		workers = 1
	}
	if workers > lanes {
		workers = lanes
	}
	e := &shardEngine{
		s:         s,
		lanes:     make([]*shardLane, lanes),
		rings:     make([]postRing, lanes*lanes),
		lookahead: lookahead,
		workers:   workers,
	}
	for i := range e.lanes {
		e.lanes[i] = &shardLane{idx: i, next: farFuture}
	}
	s.shard = e
}

// Sharded reports whether the sharded engine is enabled.
func (s *Simulator) Sharded() bool { return s.shard != nil }

// NumLanes reports the lane count (1 on an unsharded simulator).
func (s *Simulator) NumLanes() int {
	if s.shard == nil {
		return 1
	}
	return len(s.shard.lanes)
}

// Lookahead reports the configured lookahead (0 on an unsharded simulator).
func (s *Simulator) Lookahead() core.Duration {
	if s.shard == nil {
		return 0
	}
	return s.shard.lookahead
}

// LaneQ returns the scheduling handle for lane i. On an unsharded simulator
// every index returns the global-queue delegate, so callers can hold lane
// handles unconditionally.
func (s *Simulator) LaneQ(i int) Q {
	if s.shard == nil {
		return Q{s: s}
	}
	return Q{s: s, lane: s.shard.lanes[i]}
}

// OnBarrier registers fn to run in the serial section of every barrier, after
// all lanes have quiesced and drained their inboxes. Hooks observe a globally
// consistent simulation state (this is where the load generator detects
// completion and stops the run). The argument is the earliest pending instant
// across all lanes — the virtual floor of the upcoming window. Only valid on
// a sharded simulator.
func (s *Simulator) OnBarrier(fn func(now core.Time)) {
	if s.shard == nil {
		panic("simkernel: OnBarrier requires a sharded simulator")
	}
	s.shard.hooks = append(s.shard.hooks, fn)
}

// laneNow returns the maximum lane clock: the instant of the globally last
// executed event.
func (e *shardEngine) maxLaneNow() core.Time {
	var t core.Time
	for _, ln := range e.lanes {
		if ln.now > t {
			t = ln.now
		}
	}
	return t
}

// run executes the epoch loop until the deadline, Stop, or queue exhaustion,
// then folds lane counters back into the Simulator and returns the final
// clock (mirroring RunUntil's contract).
func (e *shardEngine) run(deadline core.Time) core.Time {
	e.deadline = deadline
	e.exit = false
	e.s.stopped = false
	e.claimDrain.Store(0)
	e.claimRun.Store(0)
	e.barrier.n = int32(e.workers)
	e.barrier.arrived.Store(0)

	done := make(chan struct{})
	for w := 1; w < e.workers; w++ {
		go func() {
			e.worker()
			done <- struct{}{}
		}()
	}
	e.worker()
	for w := 1; w < e.workers; w++ {
		<-done
	}

	var total int64
	for _, ln := range e.lanes {
		total += ln.executed
		ln.executed = 0
	}
	e.s.Executed += total
	e.s.now = e.exitNow
	return e.s.now
}

// worker is one epoch-loop participant. Every epoch: drain inbox rings and
// publish each lane's earliest pending instant; barrier (the last arrival
// runs the serial coordinator: hooks, exit checks, horizon computation);
// execute lane windows; barrier again before the next drain.
func (e *shardEngine) worker() {
	nLanes := len(e.lanes)
	for {
		for {
			i := int(e.claimDrain.Add(1)) - 1
			if i >= nLanes {
				break
			}
			e.drainLane(i)
		}
		e.barrier.await(e.coordinate)
		if e.exit {
			return
		}
		for {
			i := int(e.claimRun.Add(1)) - 1
			if i >= nLanes {
				break
			}
			e.runWindow(e.lanes[i])
		}
		e.barrier.await(e.resetDrain)
	}
}

func (e *shardEngine) resetDrain() { e.claimDrain.Store(0) }

// drainLane moves lane j's inbox rings into its local queue, in ascending
// source-lane order, assigning fresh destination-local sequence numbers. This
// — not wall-clock arrival — is what pins the cross-lane merge order.
func (e *shardEngine) drainLane(j int) {
	nLanes := len(e.lanes)
	ln := e.lanes[j]
	for src := 0; src < nLanes; src++ {
		ring := &e.rings[src*nLanes+j]
		for i := range ring.recs {
			r := &ring.recs[i]
			if r.at <= ln.now {
				panic(fmt.Sprintf(
					"simkernel: drained cross-lane event at %d not after lane %d clock %d",
					r.at, j, ln.now))
			}
			ln.seq++
			ln.heapPush(event{at: r.at, seq: ln.seq, fn: r.fn})
			r.fn = nil // release the closure for the collector
		}
		ring.recs = ring.recs[:0]
	}
	ln.next = ln.peekNext()
}

// coordinate is the serial section between drain and execution: it runs the
// barrier hooks against the quiescent state, decides whether the run is over,
// and otherwise sets every lane's conservative horizon to the lookahead past
// the globally earliest pending instant. The window must include every
// lane's own minimum — not just the other lanes' — because lanes converse in
// round trips: a lane with an empty queue can still receive work from the
// current window and answer it, and that answer arrives no earlier than the
// global minimum plus the lookahead. Every event below that bound is
// therefore safe, and the lane holding the minimum always makes progress.
func (e *shardEngine) coordinate() {
	e.claimRun.Store(0)

	min1 := farFuture
	for _, ln := range e.lanes {
		if ln.next < min1 {
			min1 = ln.next
		}
	}

	floor := min1
	if floor == farFuture {
		floor = e.maxLaneNow()
	}
	if !e.s.stopped {
		for _, h := range e.hooks {
			h(floor)
		}
	}
	switch {
	case e.s.stopped:
		e.exit = true
		e.exitNow = e.maxLaneNow()
		return
	case min1 == farFuture:
		e.exit = true
		e.exitNow = e.maxLaneNow()
		return
	case min1 > e.deadline:
		e.exit = true
		e.exitNow = e.deadline
		return
	}

	h := farFuture
	if min1 < farFuture-core.Time(e.lookahead) {
		h = min1.Add(e.lookahead)
	}
	for _, ln := range e.lanes {
		ln.horizon = h
	}
}

// runWindow executes one lane's events strictly below its horizon (and not
// past the run deadline), exactly as the legacy loop would: pop the (at, seq)
// minimum, advance the lane clock, dispatch.
func (e *shardEngine) runWindow(ln *shardLane) {
	h := ln.horizon
	dl := e.deadline
	for {
		t := ln.peekNext()
		if t >= h || t > dl {
			return
		}
		ev := ln.popMin()
		ln.now = ev.at
		ln.executed++
		ev.fn(ev.at)
	}
}

// --- lane-local split queue (duplicating sim.go's idiom; the legacy
// single-queue code path is deliberately left untouched) ---

// at schedules fn at absolute instant t on the lane.
func (ln *shardLane) at(t core.Time, fn func(now core.Time)) {
	if fn == nil {
		panic("simkernel: At with nil callback")
	}
	if t < ln.now {
		panic(fmt.Sprintf("simkernel: lane %d scheduling into the past (%v < %v)", ln.idx, t, ln.now))
	}
	ln.seq++
	if t == ln.now {
		ln.nowq = append(ln.nowq, event{at: t, seq: ln.seq, fn: fn})
		return
	}
	ln.heapPush(event{at: t, seq: ln.seq, fn: fn})
}

// peekNext returns the earliest pending instant, or farFuture when empty.
func (ln *shardLane) peekNext() core.Time {
	t := farFuture
	if len(ln.heap) > 0 {
		t = ln.heap[0].at
	}
	if ln.nowqHead < len(ln.nowq) && ln.nowq[ln.nowqHead].at < t {
		t = ln.nowq[ln.nowqHead].at
	}
	return t
}

// pending reports the number of queued events on the lane.
func (ln *shardLane) pending() int { return len(ln.heap) + len(ln.nowq) - ln.nowqHead }

// popMin removes and returns the (at, seq) minimum across heap and ring. The
// caller guarantees the lane is non-empty.
func (ln *shardLane) popMin() event {
	useNowq := ln.nowqHead < len(ln.nowq)
	if len(ln.heap) > 0 {
		if !useNowq || eventBefore(&ln.heap[0], &ln.nowq[ln.nowqHead]) {
			return ln.heapPop()
		}
	}
	head := &ln.nowq[ln.nowqHead]
	e := *head
	*head = event{} // release the closure for the collector
	ln.nowqHead++
	if ln.nowqHead == len(ln.nowq) {
		ln.nowq = ln.nowq[:0]
		ln.nowqHead = 0
	}
	return e
}

// heapPush inserts e into the lane's 4-ary heap (see Simulator.heapPush).
func (ln *shardLane) heapPush(e event) {
	h := append(ln.heap, event{})
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if eventBefore(&h[p], &e) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = e
	ln.heap = h
}

// heapPop removes and returns the minimum (see Simulator.heapPop).
func (ln *shardLane) heapPop() event {
	h := ln.heap
	min := h[0]
	n := len(h) - 1
	last := h[n]
	h[n] = event{} // release the closure for the collector
	h = h[:n]
	if n > 0 {
		i := 0
		for {
			c := 4*i + 1
			if c >= n {
				break
			}
			end := c + 4
			if end > n {
				end = n
			}
			m := c
			for j := c + 1; j < end; j++ {
				if eventBefore(&h[j], &h[m]) {
					m = j
				}
			}
			if eventBefore(&last, &h[m]) {
				break
			}
			h[i] = h[m]
			i = m
		}
		h[i] = last
	}
	ln.heap = h
	return min
}
