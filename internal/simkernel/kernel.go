package simkernel

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/faults"
)

// File is the kernel-side view of an open object (a socket, a listener, or the
// /dev/poll device itself). Poll is the device driver's poll callback: it
// reports current readiness without blocking. SetNotifier installs the single
// callback the kernel uses to learn about readiness transitions (the analogue
// of the driver waking a wait queue and, in the paper's extension, posting a
// hint to the backmapping list).
type File interface {
	// Poll reports the file's current readiness (the driver poll callback).
	Poll() core.EventMask
	// SetNotifier installs n to be invoked whenever the file's readiness
	// changes. Passing nil removes the notifier. The kernel installs the
	// descriptor-table entry itself (an *FD is a Notifier), so wiring a
	// descriptor costs no closure.
	SetNotifier(n Notifier)
	// Close releases the underlying object.
	Close(now core.Time)
}

// Notifier receives readiness transitions from a File's device driver.
type Notifier interface {
	Notify(now core.Time, mask core.EventMask)
}

// NotifierFunc adapts a function to the Notifier interface (used by tests).
type NotifierFunc func(now core.Time, mask core.EventMask)

// Notify implements Notifier.
func (f NotifierFunc) Notify(now core.Time, mask core.EventMask) { f(now, mask) }

// Watcher observes readiness transitions on a descriptor. Event mechanisms
// register watchers to implement wait-queue wakeups (stock poll), driver hints
// (/dev/poll backmaps) and asynchronous completion signals (RT signals).
type Watcher interface {
	ReadinessChanged(now core.Time, fd *FD, mask core.EventMask)
}

// Kernel bundles the simulation clock, the server CPUs and the cost model.
// All server-side packages share one Kernel per experiment. CPU is processor 0
// — the whole machine on the paper's uniprocessor testbed, and the default
// interrupt target on an SMP kernel.
type Kernel struct {
	Sim   *Simulator
	Sched *Scheduler
	CPU   *CPU
	Cost  *CostModel
	Trace Tracer

	// Faults is the deterministic fault-injection configuration every layer
	// reads (netsim's socket calls, the interest engine's blocking waits). Its
	// zero value injects nothing and charges nothing; set it before any
	// process, server or connection exists.
	Faults faults.Config
}

// NewKernel creates a uniprocessor kernel with a fresh simulator, the paper's
// testbed. A nil cost model selects DefaultCostModel.
func NewKernel(cost *CostModel) *Kernel {
	return NewKernelSMP(cost, 1)
}

// NewKernelSMP creates a kernel with ncpu processors (at least one). With
// ncpu == 1 it is exactly NewKernel: the uniprocessor model the paper
// measured.
func NewKernelSMP(cost *CostModel, ncpu int) *Kernel {
	if cost == nil {
		cost = DefaultCostModel()
	}
	sim := NewSimulator()
	sched := NewScheduler(sim, ncpu)
	return &Kernel{
		Sim:   sim,
		Sched: sched,
		CPU:   sched.CPU(0),
		Cost:  cost,
		Trace: NopTracer{},
	}
}

// Now returns the current virtual time.
func (k *Kernel) Now() core.Time { return k.Sim.Now() }

// EnableParallel shards the kernel's simulator into numLanes lanes driven by
// the given number of worker goroutines (see Simulator.EnableSharding) and
// homes each CPU on lane (index+1) mod numLanes, keeping lane 0 — the
// experiment-driver lane — free of server CPUs whenever numLanes exceeds the
// CPU count. Must be called before any process, server or event is created so
// every completion path picks up its lane handle.
func (k *Kernel) EnableParallel(numLanes, workers int, lookahead core.Duration) {
	k.Sim.EnableSharding(numLanes, workers, lookahead)
	n := k.Sim.NumLanes()
	for i, c := range k.Sched.CPUs() {
		c.q = k.Sim.LaneQ((i + 1) % n)
	}
}

// Interrupt charges interrupt-context work (packet reception, signal
// enqueueing) to CPU 0 at time now, invoking done at its completion if it is
// non-nil. It returns the completion instant. Work that belongs to a specific
// core (steered IRQs on an SMP host) uses InterruptOn.
func (k *Kernel) Interrupt(now core.Time, cost core.Duration, done func(now core.Time)) core.Time {
	return k.CPU.Exec(now, cost, done)
}

// InterruptOn charges interrupt-context work to the given CPU, modelling IRQ
// steering: on an SMP host the NIC delivers a connection's interrupts to the
// core its worker runs on. A nil cpu selects CPU 0, the uniprocessor default.
func (k *Kernel) InterruptOn(cpu *CPU, now core.Time, cost core.Duration, done func(now core.Time)) core.Time {
	if cpu == nil {
		cpu = k.CPU
	}
	return cpu.Exec(now, cost, done)
}

// Tracef emits a trace record if tracing is enabled.
func (k *Kernel) Tracef(now core.Time, component, format string, args ...interface{}) {
	if k.Trace != nil {
		k.Trace.Trace(now, component, format, args...)
	}
}

// FD is an entry in a process's descriptor table. Gen identifies this
// particular open: because POSIX allocates the lowest unused descriptor
// number, a closed number is recycled by the very next open, and a readiness
// report that was in flight when the old descriptor closed carries the same
// number as the new one. The generation is what lets event mechanisms and
// consumers tell the two opens apart — the stale-report hazard the paper warns
// RT-signal applications about (§4).
type FD struct {
	Num  int
	Gen  uint64
	Proc *Proc

	// BufferRegistered marks the descriptor as having a fixed buffer
	// registered with the kernel (compio's registered-buffer reads): socket
	// reads skip the Cost.SockReadCopy component while it is set. Only the
	// compio mechanism sets it; it dies with the descriptor on close.
	BufferRegistered bool

	file     File
	watchers []Watcher
	closed   bool
}

// File returns the underlying open file.
func (fd *FD) File() File { return fd.file }

// Closed reports whether the descriptor has been closed.
func (fd *FD) Closed() bool { return fd.closed }

// Poll reports the file's readiness without charging any CPU cost. Mechanisms
// that model the expense of the driver callback should use DriverPoll.
func (fd *FD) Poll() core.EventMask {
	if fd.closed {
		return core.POLLNVAL
	}
	return fd.file.Poll()
}

// DriverPoll invokes the device driver's poll callback, charging its cost to
// the process's current batch (or directly to the CPU-independent accumulator
// if no batch is active, which only happens in tests).
func (fd *FD) DriverPoll() core.EventMask {
	fd.Proc.Charge(fd.Proc.K.Cost.DriverPoll)
	return fd.Poll()
}

// AddWatcher registers w to be notified of readiness transitions on fd.
func (fd *FD) AddWatcher(w Watcher) {
	for _, existing := range fd.watchers {
		if existing == w {
			return
		}
	}
	fd.watchers = append(fd.watchers, w)
}

// RemoveWatcher unregisters w.
func (fd *FD) RemoveWatcher(w Watcher) {
	for i, existing := range fd.watchers {
		if existing == w {
			fd.watchers = append(fd.watchers[:i], fd.watchers[i+1:]...)
			return
		}
	}
}

// Watchers reports the number of registered watchers (used by tests).
func (fd *FD) Watchers() int { return len(fd.watchers) }

// Notify implements Notifier: it fans a readiness transition out to all
// registered watchers. Files call it (via SetNotifier's installed target)
// whenever their readiness changes.
func (fd *FD) Notify(now core.Time, mask core.EventMask) {
	if fd.closed {
		return
	}
	switch len(fd.watchers) {
	case 0:
	case 1:
		// The overwhelmingly common case: deliver directly. The watcher may
		// remove itself — there is no further iteration to disturb.
		fd.watchers[0].ReadinessChanged(now, fd, mask)
	default:
		// Copy: watchers may remove themselves during delivery. A small stack
		// buffer covers every configuration the servers build (at most one
		// mechanism per fd plus the hybrid's mirrored pair).
		var buf [4]Watcher
		ws := append(buf[:0], fd.watchers...)
		for _, w := range ws {
			w.ReadinessChanged(now, fd, mask)
		}
	}
}

// Proc is a simulated process: a descriptor table plus the batch accounting
// used to charge the cost of a run of system calls to the CPU as one
// scheduling quantum. Each process is pinned to one CPU for its lifetime (hard
// affinity, as a prefork worker in practice); all its batches serialise there.
type Proc struct {
	K    *Kernel
	Name string

	cpu *CPU

	// fds is the descriptor table, indexed by descriptor number (nil = free).
	// POSIX lowest-unused allocation keeps it dense, so lookups are a bounds
	// check and an index — no hashing on the per-syscall path.
	fds     []*FD
	nfds    int    // open descriptors
	freeFD  int    // lowest descriptor number that may be unused
	nextGen uint64 // generation counter stamped onto installed descriptors

	inBatch   bool
	batchCost core.Duration
	deferred  []func(now core.Time)

	// donePool recycles batch-completion records (and their deferred-effect
	// slices and pre-bound callbacks), so submitting a batch to the CPU
	// allocates nothing at steady state. Batches from one process can overlap
	// in flight (the CPU serialises them), so this is a pool, not a single
	// slot.
	donePool []*batchDone

	// TotalCharged accumulates all CPU time charged through this process.
	TotalCharged core.Duration
}

// batchDone carries one batch's completion work: the deferred externally
// visible effects and the caller's done callback. fn is the completion
// closure handed to the CPU, bound once when the record is created and reused
// for the record's whole life.
type batchDone struct {
	p        *Proc
	deferred []func(now core.Time)
	done     func(now core.Time)
	fn       func(now core.Time)
}

// run executes the completion at the batch's finish instant and recycles the
// record.
func (bd *batchDone) run(t core.Time) {
	deferred := bd.deferred
	done := bd.done
	bd.done = nil
	for i, d := range deferred {
		d(t)
		deferred[i] = nil // release the closure for the collector
	}
	bd.deferred = deferred[:0]
	bd.p.donePool = append(bd.p.donePool, bd)
	if done != nil {
		done(t)
	}
}

// NewProc creates a process with an empty descriptor table, pinned to CPU 0.
// Descriptor numbers start at 3, leaving room for the conventional
// stdin/stdout/stderr.
func (k *Kernel) NewProc(name string) *Proc {
	return k.NewProcOn(name, k.CPU)
}

// NewProcOn creates a process pinned to the given CPU (nil selects CPU 0).
func (k *Kernel) NewProcOn(name string, cpu *CPU) *Proc {
	if cpu == nil {
		cpu = k.CPU
	}
	return &Proc{K: k, Name: name, cpu: cpu, freeFD: 3}
}

// CPU returns the processor the process is pinned to.
func (p *Proc) CPU() *CPU { return p.cpu }

// Q returns the scheduling handle of the process's CPU: its home lane on a
// sharded run, the global queue otherwise.
func (p *Proc) Q() Q { return p.cpu.q }

// Now returns the process's current virtual time: its lane clock on a sharded
// run (the globally correct instant for code executing on this process),
// identical to Kernel.Now on an unsharded one.
func (p *Proc) Now() core.Time { return p.cpu.q.Now() }

// Install allocates the lowest unused descriptor number for f and returns the
// new table entry, mirroring POSIX descriptor allocation: a closed number is
// recycled by the next open. Every install gets a fresh generation so stale
// readiness reports for a previous open of the same number remain
// distinguishable.
func (p *Proc) Install(f File) *FD {
	num := p.freeFD
	for num < len(p.fds) && p.fds[num] != nil {
		num++
	}
	p.freeFD = num + 1
	p.nextGen++
	fd := &FD{Num: num, Gen: p.nextGen, Proc: p, file: f}
	for num >= len(p.fds) {
		p.fds = append(p.fds, nil)
	}
	p.fds[num] = fd
	p.nfds++
	f.SetNotifier(fd)
	return fd
}

// Get returns the descriptor table entry for fd.
func (p *Proc) Get(fd int) (*FD, bool) {
	if fd < 0 || fd >= len(p.fds) || p.fds[fd] == nil {
		return nil, false
	}
	return p.fds[fd], true
}

// NumFDs reports the number of open descriptors.
func (p *Proc) NumFDs() int { return p.nfds }

// FDs returns the open descriptor numbers in ascending order.
func (p *Proc) FDs() []int {
	out := make([]int, 0, p.nfds)
	for n, e := range p.fds {
		if e != nil {
			out = append(out, n)
		}
	}
	return out
}

// CloseFD removes fd from the table and closes the underlying file. The caller
// is responsible for charging the close cost (Cost.SockClose + SyscallEntry).
func (p *Proc) CloseFD(now core.Time, fd int) error {
	e, ok := p.Get(fd)
	if !ok {
		return core.ErrBadFD
	}
	p.fds[fd] = nil
	p.nfds--
	if fd < p.freeFD {
		p.freeFD = fd
	}
	e.closed = true
	e.watchers = nil
	e.file.SetNotifier(nil)
	e.file.Close(now)
	return nil
}

// InBatch reports whether a batch is currently being accumulated.
func (p *Proc) InBatch() bool { return p.inBatch }

// Charge adds d to the cost of the current batch. Outside a batch the cost is
// still accounted in TotalCharged but not scheduled; mechanisms always operate
// inside batches, so this path is only taken by unit tests poking at internals.
func (p *Proc) Charge(d core.Duration) {
	if d < 0 {
		d = 0
	}
	p.TotalCharged += d
	if p.inBatch {
		p.batchCost += d
	}
}

// ChargeSyscall charges the fixed syscall entry/exit cost plus extra.
func (p *Proc) ChargeSyscall(extra core.Duration) {
	p.Charge(p.K.Cost.SyscallEntry + extra)
}

// Defer registers fn to run at the completion instant of the current batch.
// Externally visible effects of system calls (transmitting a response,
// delivering a FIN) are deferred so they become visible only once the CPU has
// actually finished the work that produced them.
func (p *Proc) Defer(fn func(now core.Time)) {
	if !p.inBatch {
		// Outside a batch there is nothing to defer against; run immediately.
		fn(p.Now())
		return
	}
	p.deferred = append(p.deferred, fn)
}

// Batch runs fn as one scheduling quantum of the process at time now: fn
// performs its system calls synchronously, each charging cost via Charge; when
// fn returns, the accumulated cost is submitted to the CPU, deferred effects
// run at the completion instant, and done (if non-nil) is invoked last.
// Nested batches are a programming error.
func (p *Proc) Batch(now core.Time, fn func(), done func(now core.Time)) {
	if p.inBatch {
		panic(fmt.Sprintf("simkernel: nested Batch on process %q", p.Name))
	}
	p.inBatch = true
	p.batchCost = 0
	fn()
	cost := p.batchCost
	p.inBatch = false
	p.batchCost = 0

	var bd *batchDone
	if n := len(p.donePool); n > 0 {
		bd = p.donePool[n-1]
		p.donePool[n-1] = nil
		p.donePool = p.donePool[:n-1]
	} else {
		bd = &batchDone{p: p}
		bd.fn = bd.run
	}
	bd.done = done
	// Hand the accumulated deferred effects to the completion record and take
	// its (drained) slice back, so both backing arrays recycle.
	bd.deferred, p.deferred = p.deferred, bd.deferred[:0]
	p.cpu.Exec(now, cost, bd.fn)
}
