package simkernel

import (
	"container/heap"
	"math/rand"
	"testing"

	"repro/internal/core"
)

// refEvent / refHeap reimplement the pre-optimization event queue — a
// container/heap of pointers ordered by (at, seq) — as the reference model for
// the property test below. The inline 4-ary heap plus same-instant ring must
// pop in exactly this order for every schedule, or simulation runs would stop
// being bit-reproducible across the rewrite.
type refEvent struct {
	at  core.Time
	seq uint64
}

type refHeap []*refEvent

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x interface{}) { *h = append(*h, x.(*refEvent)) }
func (h *refHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// TestSimulatorMatchesReferenceHeap drives randomized schedules — bursts of
// same-time events (exercising the fast-path ring), near-time events, far
// deadlines, and reschedules from inside callbacks — through both the
// Simulator and the reference container/heap model, and requires the pop
// order (including seq tie-breaks) to match exactly.
func TestSimulatorMatchesReferenceHeap(t *testing.T) {
	for trial := 0; trial < 50; trial++ {
		rng := rand.New(rand.NewSource(int64(trial + 1)))
		sim := NewSimulator()

		ref := refHeap{}
		heap.Init(&ref)
		var refSeq uint64

		var got, want []uint64

		// schedule mirrors one event into both queues. fires record into got;
		// the reference order is reconstructed by draining ref afterwards.
		var schedule func(at core.Time)
		var scheduled int
		schedule = func(at core.Time) {
			scheduled++
			refSeq++
			seq := refSeq
			heap.Push(&ref, &refEvent{at: at, seq: seq})
			sim.At(at, func(now core.Time) {
				if now != at {
					t.Fatalf("trial %d: event %d fired at %v, scheduled for %v", trial, seq, now, at)
				}
				got = append(got, seq)
				// Occasionally reschedule from inside the callback, including
				// zero-delay events that land on the same-instant ring.
				if scheduled < 300 && rng.Intn(3) == 0 {
					n := 1 + rng.Intn(3)
					for i := 0; i < n; i++ {
						schedule(now.Add(core.Duration(rng.Intn(5)) * core.Microsecond))
					}
				}
			})
		}

		initial := 30 + rng.Intn(50)
		for i := 0; i < initial; i++ {
			// Cluster times so same-(at) ties with distinct seq are frequent.
			schedule(core.Time(rng.Intn(20)) * core.Time(core.Microsecond))
		}
		sim.Run()

		for ref.Len() > 0 {
			want = append(want, heap.Pop(&ref).(*refEvent).seq)
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: executed %d events, reference holds %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: pop %d: simulator fired seq %d, reference expects seq %d",
					trial, i, got[i], want[i])
			}
		}
		if sim.Pending() != 0 {
			t.Fatalf("trial %d: %d events still pending after Run", trial, sim.Pending())
		}
	}
}

// TestSimulatorRunUntilDeadline checks the deadline semantics survive the
// split queue: events beyond the deadline stay queued, the clock parks at the
// deadline, and a later RunUntil picks them up in order.
func TestSimulatorRunUntilDeadline(t *testing.T) {
	sim := NewSimulator()
	var fired []int
	for i, at := range []core.Duration{1, 2, 3, 10, 11} {
		i, at := i, at
		sim.At(core.Time(at*core.Microsecond), func(core.Time) { fired = append(fired, i) })
	}
	sim.RunUntil(core.Time(5 * core.Microsecond))
	if len(fired) != 3 {
		t.Fatalf("fired %v before deadline, want first 3", fired)
	}
	if sim.Now() != core.Time(5*core.Microsecond) {
		t.Fatalf("clock at %v, want parked at deadline", sim.Now())
	}
	if sim.Pending() != 2 {
		t.Fatalf("pending %d, want 2", sim.Pending())
	}
	sim.Run()
	if len(fired) != 5 || fired[3] != 3 || fired[4] != 4 {
		t.Fatalf("fired %v after drain, want all five in order", fired)
	}
}

// TestSimulatorSameInstantOrdering pins the interleaving the fast-path ring
// must preserve: events scheduled for the current instant from inside a
// callback run after already-queued events for the same instant with smaller
// sequence numbers, exactly as with a single heap.
func TestSimulatorSameInstantOrdering(t *testing.T) {
	sim := NewSimulator()
	at := core.Time(3 * core.Microsecond)
	var order []string
	sim.At(at, func(now core.Time) {
		order = append(order, "a")
		// Lands on the ring (now == at) but must fire after "b", which was
		// scheduled earlier for the same instant.
		sim.At(now, func(core.Time) { order = append(order, "c") })
	})
	sim.At(at, func(core.Time) { order = append(order, "b") })
	sim.Run()
	if len(order) != 3 || order[0] != "a" || order[1] != "b" || order[2] != "c" {
		t.Fatalf("order %v, want [a b c]", order)
	}
}
