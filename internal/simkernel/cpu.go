package simkernel

import "repro/internal/core"

// CPU models one processor of the simulated server host (the paper's
// 400 MHz AMD K6-2). Work is serialised first-come first-served: a request for
// `cost` of processing that arrives at time `now` starts no earlier than the
// completion of previously accepted work and finishes `cost` later.
//
// Interrupt-context work (network arrivals, signal enqueueing) and process
// context work (the server's event loop) share the same processor, which is
// exactly the contention the paper's overload experiments exercise. An SMP
// host is a Scheduler over several CPUs: work bound to different CPUs overlaps
// in virtual time, while contention within one core still serialises.
type CPU struct {
	sim *Simulator

	// q is the scheduling handle completion events go through: the global
	// queue on an unsharded simulator, the CPU's home lane on a sharded one
	// (assigned by Kernel.EnableParallel). Everything that runs "on" this CPU
	// — batches, interrupts, their completions — executes on that lane.
	q Q

	// Index is the CPU's position in its Scheduler (0 on a uniprocessor).
	Index int

	// busyUntil is the instant at which all currently accepted work completes.
	busyUntil core.Time

	// Busy accumulates total processing time accepted, for utilisation reports.
	Busy core.Duration

	// Jobs counts Exec invocations.
	Jobs int64
}

// NewCPU returns a CPU bound to the given simulator.
func NewCPU(sim *Simulator) *CPU {
	return &CPU{sim: sim, q: Q{s: sim}}
}

// Q returns the CPU's scheduling handle (its home lane on a sharded run).
func (c *CPU) Q() Q { return c.q }

// Exec accepts a unit of work costing cost at virtual time now and schedules
// done (if non-nil) at its completion instant, which is returned. A negative
// cost is treated as zero.
func (c *CPU) Exec(now core.Time, cost core.Duration, done func(now core.Time)) core.Time {
	if cost < 0 {
		cost = 0
	}
	start := now
	if c.busyUntil > start {
		start = c.busyUntil
	}
	finish := start.Add(cost)
	c.busyUntil = finish
	c.Busy += cost
	c.Jobs++
	if done != nil {
		c.q.At(finish, done)
	}
	return finish
}

// BusyUntil reports the completion instant of all accepted work.
func (c *CPU) BusyUntil() core.Time { return c.busyUntil }

// Utilization reports the fraction of virtual time the CPU has been busy,
// measured against the supplied elapsed window. It returns 0 for an empty
// window. The ratio is deliberately not clamped: because the CPU serialises
// work, Busy can never exceed the makespan of the accepted work (BusyUntil),
// so a ratio above 1 against a window covering that makespan means a batch was
// double-charged — a bug the old clamp used to mask. Callers measuring
// mid-run, against a window the accepted work overruns, should widen the
// window to BusyUntil (see WorkWindow).
func (c *CPU) Utilization(elapsed core.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(c.Busy) / float64(elapsed)
}

// WorkWindow returns the wall window that is guaranteed to contain all
// accepted work as of virtual time now: Utilization(WorkWindow(now)) <= 1
// holds for a correctly charging simulation even while work is still queued.
func (c *CPU) WorkWindow(now core.Time) core.Duration {
	if c.busyUntil > now {
		now = c.busyUntil
	}
	return now.Sub(0)
}

// QueueDelay reports how long newly submitted work would wait before starting
// if submitted at time now.
func (c *CPU) QueueDelay(now core.Time) core.Duration {
	if c.busyUntil <= now {
		return 0
	}
	return c.busyUntil.Sub(now)
}
