package epoll

import (
	"testing"

	"repro/internal/core"
	"repro/internal/simtest"
)

func open(env *simtest.Env, opts Options) *Epoll { return Open(env.K, env.P, opts) }

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

func TestNamesAndDefaults(t *testing.T) {
	env := simtest.NewEnv()
	lt := open(env, DefaultOptions())
	if lt.Name() != "epoll" {
		t.Fatalf("LT Name = %q", lt.Name())
	}
	et := open(env, Options{EdgeTriggered: true})
	if et.Name() != "epoll-et" {
		t.Fatalf("ET Name = %q", et.Name())
	}
	if et.Options().MaxEvents <= 0 {
		t.Fatalf("MaxEvents default missing: %+v", et.Options())
	}
	if DefaultOptions().EdgeTriggered {
		t.Fatal("default must be level-triggered")
	}
}

func TestCtlChargesKernelResidentUpdate(t *testing.T) {
	env := simtest.NewEnv()
	ep := open(env, DefaultOptions())
	fd, _ := env.NewFD(0)
	env.P.Batch(0, func() {
		must(t, ep.Add(fd.Num, core.POLLIN))
	}, nil)
	env.Run()
	// One epoll_ctl syscall: entry + interest update + the registration-time
	// driver readiness check.
	want := env.K.Cost.SyscallEntry + env.K.Cost.InterestUpdate + env.K.Cost.DriverPoll
	if env.P.TotalCharged != want {
		t.Fatalf("Add charged %v, want %v", env.P.TotalCharged, want)
	}
	if !ep.Interested(fd.Num) || ep.Len() != 1 {
		t.Fatal("interest not registered")
	}
	if fd.Watchers() != 1 {
		t.Fatalf("watchers = %d", fd.Watchers())
	}
	if err := ep.Add(fd.Num, core.POLLIN); err != core.ErrExists {
		t.Fatalf("duplicate Add: %v", err)
	}
	if err := ep.Add(999, core.POLLIN); err != core.ErrBadFD {
		t.Fatalf("Add of unknown fd: %v", err)
	}
	if err := ep.Modify(999, core.POLLIN); err != core.ErrNotFound {
		t.Fatalf("Modify missing: %v", err)
	}
	if err := ep.Remove(999); err != core.ErrNotFound {
		t.Fatalf("Remove missing: %v", err)
	}
	env.P.Batch(env.K.Now(), func() { must(t, ep.Remove(fd.Num)) }, nil)
	env.Run()
	if fd.Watchers() != 0 || ep.Interested(fd.Num) {
		t.Fatal("Remove did not unregister")
	}
}

func TestWaitScansOnlyTheReadyList(t *testing.T) {
	env := simtest.NewEnv()
	ep := open(env, DefaultOptions())
	const idle = 100
	env.P.Batch(0, func() {
		for i := 0; i < idle; i++ {
			fd, _ := env.NewFD(0)
			must(t, ep.Add(fd.Num, core.POLLIN))
		}
	}, nil)
	env.Run()
	polls := ep.MechanismStats().DriverPolls // registration-time checks

	active, file := env.NewFD(0)
	env.P.Batch(env.K.Now(), func() { must(t, ep.Add(active.Num, core.POLLIN)) }, nil)
	env.Run()
	file.SetReady(env.K.Now(), core.POLLIN)
	env.Run()

	var col simtest.Collector
	ep.Wait(0, core.Forever, col.Handler())
	env.Run()
	if col.Calls != 1 || len(col.Events) != 1 || col.Events[0].FD != active.Num {
		t.Fatalf("collector = %+v", col)
	}
	// The wait re-validated exactly the one ready descriptor (plus the one
	// registration check for the active fd): the 100 idle descriptors were
	// never touched.
	waitPolls := ep.MechanismStats().DriverPolls - polls - 1
	if waitPolls != 1 {
		t.Fatalf("driver polls during wait = %d, want 1 (O(ready), not O(registered))", waitPolls)
	}
	st := ep.MechanismStats()
	if st.Waits != 1 || st.EventsReturned != 1 || st.CopiedOut != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLevelTriggeredRedeliversUntilDrained(t *testing.T) {
	env := simtest.NewEnv()
	ep := open(env, DefaultOptions())
	fd, file := env.NewFD(core.POLLIN)
	env.P.Batch(0, func() { must(t, ep.Add(fd.Num, core.POLLIN)) }, nil)
	env.Run()

	for round := 0; round < 3; round++ {
		var col simtest.Collector
		ep.Wait(0, 0, col.Handler())
		env.Run()
		if len(col.Events) != 1 || col.Events[0].FD != fd.Num {
			t.Fatalf("round %d: events = %+v (LT must redeliver)", round, col.Events)
		}
	}

	// Drained: the stale ready-list entry is re-validated and dropped.
	file.ReadyMask = 0
	var col simtest.Collector
	ep.Wait(0, 0, col.Handler())
	env.Run()
	if len(col.Events) != 0 {
		t.Fatalf("events after drain = %+v", col.Events)
	}
	if ep.ReadyLen() != 0 {
		t.Fatalf("ready list not cleaned: %d", ep.ReadyLen())
	}
}

func TestEdgeTriggeredDeliversTransitionsOnce(t *testing.T) {
	env := simtest.NewEnv()
	ep := open(env, Options{EdgeTriggered: true})
	fd, file := env.NewFD(0)
	env.P.Batch(0, func() { must(t, ep.Add(fd.Num, core.POLLIN)) }, nil)
	env.Run()

	file.SetReady(env.K.Now(), core.POLLIN)
	env.Run()
	var col simtest.Collector
	ep.Wait(0, 0, col.Handler())
	env.Run()
	if len(col.Events) != 1 || col.Events[0].FD != fd.Num {
		t.Fatalf("events = %+v", col.Events)
	}

	// No new transition: the data is still there but ET stays silent.
	var col2 simtest.Collector
	ep.Wait(0, 0, col2.Handler())
	env.Run()
	if len(col2.Events) != 0 {
		t.Fatalf("ET redelivered without a transition: %+v", col2.Events)
	}

	// A fresh transition queues it again.
	file.SetReady(env.K.Now(), core.POLLIN)
	env.Run()
	var col3 simtest.Collector
	ep.Wait(0, 0, col3.Handler())
	env.Run()
	if len(col3.Events) != 1 {
		t.Fatalf("ET lost a new transition: %+v", col3.Events)
	}
	// ET never re-validates with the driver during the wait itself.
	if polls := ep.MechanismStats().DriverPolls; polls != 1 {
		t.Fatalf("driver polls = %d, want only the registration check", polls)
	}
}

func TestPreexistingReadinessReportedAtAdd(t *testing.T) {
	// Data that arrived before epoll_ctl(ADD) must not be lost — the
	// registration-time readiness check covers it in both modes.
	for _, et := range []bool{false, true} {
		env := simtest.NewEnv()
		ep := open(env, Options{EdgeTriggered: et})
		fd, _ := env.NewFD(core.POLLIN)
		env.P.Batch(0, func() { must(t, ep.Add(fd.Num, core.POLLIN)) }, nil)
		env.Run()
		var col simtest.Collector
		ep.Wait(0, core.Forever, col.Handler())
		env.Run()
		if len(col.Events) != 1 || col.Events[0].FD != fd.Num {
			t.Fatalf("et=%v: pre-existing readiness lost: %+v", et, col.Events)
		}
	}
}

func TestWaitBlocksUntilReadiness(t *testing.T) {
	env := simtest.NewEnv()
	ep := open(env, DefaultOptions())
	fd, file := env.NewFD(0)
	env.P.Batch(0, func() { must(t, ep.Add(fd.Num, core.POLLIN)) }, nil)
	env.Run()

	var col simtest.Collector
	ep.Wait(0, core.Forever, col.Handler())
	env.K.Sim.At(core.Time(4*core.Millisecond), func(now core.Time) {
		file.SetReady(now, core.POLLIN)
	})
	env.Run()
	if col.Calls != 1 || len(col.Events) != 1 || col.Events[0].FD != fd.Num {
		t.Fatalf("collector = %+v", col)
	}
	if col.At < core.Time(4*core.Millisecond) {
		t.Fatalf("woke too early: %v", col.At)
	}
}

func TestMaxEventsCapsDeliveryAndKeepsRemainder(t *testing.T) {
	env := simtest.NewEnv()
	ep := open(env, DefaultOptions())
	env.P.Batch(0, func() {
		for i := 0; i < 10; i++ {
			fd, _ := env.NewFD(core.POLLIN)
			must(t, ep.Add(fd.Num, core.POLLIN))
		}
	}, nil)
	env.Run()
	var col simtest.Collector
	ep.Wait(4, core.Forever, col.Handler())
	env.Run()
	if len(col.Events) != 4 {
		t.Fatalf("events = %d, want 4", len(col.Events))
	}
	// The remaining six are still queued and arrive on the next wait.
	var col2 simtest.Collector
	ep.Wait(0, 0, col2.Handler())
	env.Run()
	if len(col2.Events) != 10 {
		t.Fatalf("second wait events = %d, want all 10 still ready (LT)", len(col2.Events))
	}
}

func TestClosedDescriptorReportsPOLLNVALOnce(t *testing.T) {
	env := simtest.NewEnv()
	ep := open(env, DefaultOptions())
	fd, file := env.NewFD(0)
	env.P.Batch(0, func() { must(t, ep.Add(fd.Num, core.POLLIN)) }, nil)
	env.Run()
	file.SetReady(env.K.Now(), core.POLLIN)
	env.Run()
	if err := env.P.CloseFD(env.K.Now(), fd.Num); err != nil {
		t.Fatal(err)
	}
	var col simtest.Collector
	ep.Wait(0, 0, col.Handler())
	env.Run()
	if len(col.Events) != 1 || !col.Events[0].Ready.Has(core.POLLNVAL) {
		t.Fatalf("events = %+v", col.Events)
	}
}

func TestCloseReleasesWatchersAndAbortsWait(t *testing.T) {
	env := simtest.NewEnv()
	ep := open(env, DefaultOptions())
	fd, _ := env.NewFD(0)
	env.P.Batch(0, func() { must(t, ep.Add(fd.Num, core.POLLIN)) }, nil)
	env.Run()

	var col simtest.Collector
	ep.Wait(0, core.Forever, col.Handler())
	env.K.Sim.At(core.Time(core.Millisecond), func(core.Time) {
		if err := ep.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	})
	env.Run()
	if col.Calls != 1 || len(col.Events) != 0 {
		t.Fatalf("close-while-waiting did not deliver an empty result: %+v", col)
	}
	if fd.Watchers() != 0 {
		t.Fatal("watcher leaked after Close")
	}
	if err := ep.Add(fd.Num, core.POLLIN); err != core.ErrClosed {
		t.Fatalf("Add after Close: %v", err)
	}
	if err := ep.Close(); err != core.ErrClosed {
		t.Fatalf("double Close: %v", err)
	}
}

// The epoll analogue of devpoll's flat-cost property: the marginal wait cost
// of an idle registered descriptor is zero, because epoll_wait never visits
// descriptors that are not on the ready list.
func TestWaitCostIndependentOfIdleDescriptors(t *testing.T) {
	waitCost := func(idle int) core.Duration {
		env := simtest.NewEnv()
		ep := open(env, DefaultOptions())
		var activeFile *simtest.FakeFile
		var activeFD int
		env.P.Batch(0, func() {
			fd, f := env.NewFD(0)
			activeFD, activeFile = fd.Num, f
			must(t, ep.Add(fd.Num, core.POLLIN))
			for i := 0; i < idle; i++ {
				fd, _ := env.NewFD(0)
				must(t, ep.Add(fd.Num, core.POLLIN))
			}
		}, nil)
		env.Run()
		activeFile.SetReady(env.K.Now(), core.POLLIN)
		env.Run()
		before := env.P.TotalCharged
		var col simtest.Collector
		ep.Wait(0, 0, col.Handler())
		env.Run()
		if len(col.Events) != 1 || col.Events[0].FD != activeFD {
			t.Fatalf("idle=%d: events = %+v", idle, col.Events)
		}
		return env.P.TotalCharged - before
	}
	small := waitCost(10)
	large := waitCost(510)
	if small != large {
		t.Fatalf("wait cost must be independent of registered set size: 10 idle = %v, 510 idle = %v",
			small, large)
	}
}
