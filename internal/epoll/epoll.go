// Package epoll simulates the Linux epoll interface — the mechanism history
// actually converged on after the paper's /dev/poll and RT-signal experiments
// (epoll_create/epoll_ctl/epoll_wait, merged in Linux 2.5/2.6). It is the
// fourth Poller of the reproduction and a direct application of the
// explicit-event-delivery lineage (Banga, Mogul & Druschel, USENIX '99) the
// paper cites as related work.
//
// Like /dev/poll, epoll keeps the interest set resident in the kernel and
// updates it incrementally, so registration costs are paid once rather than
// per wait. Unlike /dev/poll, epoll_wait does not scan the interest set at
// all: the kernel maintains a ready list that drivers append to, and a wait
// touches only that list — O(ready) work independent of the number of
// registered descriptors. Both trigger modes are modelled:
//
//   - level-triggered (the default): a descriptor stays on the ready list
//     while it remains ready; each epoll_wait re-validates it with the device
//     driver's poll callback, exactly like the kernel's ep_send_events loop;
//   - edge-triggered (EPOLLET): a descriptor is queued once per readiness
//     transition and delivered without re-validation; consumers must drain
//     descriptors fully or they stall.
//
// The whole mechanism is a thin layer over the shared engine in
// internal/interest: the kernel-resident Table is the epoll interest set (the
// real kernel uses a red-black tree; the paper's chained hash table serves the
// same role here), the readiness Ledger is the ready list, and the Engine is
// the blocking epoll_wait state machine.
package epoll

import (
	"repro/internal/core"
	"repro/internal/interest"
	"repro/internal/simkernel"
)

// Options configure an epoll instance.
type Options struct {
	// EdgeTriggered selects EPOLLET semantics for every registered descriptor
	// (the simulation applies one trigger mode per instance).
	EdgeTriggered bool
	// MaxEvents is the default result capacity when Wait is called with
	// max <= 0, mirroring the maxevents argument of epoll_wait.
	MaxEvents int
}

// DefaultOptions selects level-triggered delivery with a 4096-event result
// buffer, matching the /dev/poll result area so comparisons are fair.
func DefaultOptions() Options {
	return Options{EdgeTriggered: false, MaxEvents: 4096}
}

// Epoll is one epoll instance: the kernel-resident interest set plus the
// ready list, as created by epoll_create(2).
type Epoll struct {
	k    *simkernel.Kernel
	p    *simkernel.Proc
	opts Options

	table *interest.Table  // interest set (epoll_ctl ADD/MOD/DEL)
	ready *interest.Ledger // the kernel ready list drivers append to

	eng interest.Engine

	stats  core.Stats
	closed bool
}

// Open creates an epoll instance for process p, mirroring epoll_create(2).
func Open(k *simkernel.Kernel, p *simkernel.Proc, opts Options) *Epoll {
	if opts.MaxEvents <= 0 {
		opts.MaxEvents = 4096
	}
	ep := &Epoll{
		k:     k,
		p:     p,
		opts:  opts,
		table: interest.NewTable(),
		ready: interest.NewLedger(),
	}
	ep.eng = interest.Engine{
		Name:    ep.Name(),
		K:       k,
		P:       p,
		Collect: ep.collect,
		// Blocking joins the single epoll wait queue.
		OnBlock:         func(bool) { ep.p.Charge(ep.k.Cost.WaitQueueOp) },
		TimeoutTeardown: func() core.Duration { return ep.k.Cost.WaitQueueOp },
		Stats:           &ep.stats,
	}
	return ep
}

// Name implements core.Poller.
func (ep *Epoll) Name() string {
	if ep.opts.EdgeTriggered {
		return "epoll-et"
	}
	return "epoll"
}

// Options returns the active option set.
func (ep *Epoll) Options() Options { return ep.opts }

// Table exposes the kernel-resident interest set (for tests and ablations).
func (ep *Epoll) Table() *interest.Table { return ep.table }

// ReadyLen reports the current ready-list length (for tests).
func (ep *Epoll) ReadyLen() int { return ep.ready.Len() }

// MechanismStats implements core.StatsSource.
func (ep *Epoll) MechanismStats() core.Stats { return ep.stats }

// Add implements core.Poller: epoll_ctl(EPOLL_CTL_ADD). Registration charges
// the kernel-resident update once; as in the real kernel, the descriptor's
// current readiness is checked at registration time so pre-existing data is
// not lost (important for edge-triggered consumers).
func (ep *Epoll) Add(fd int, events core.EventMask) error {
	if ep.closed {
		return core.ErrClosed
	}
	if ep.table.Contains(fd) {
		return core.ErrExists
	}
	entry, ok := ep.p.Get(fd)
	if !ok {
		return core.ErrBadFD
	}
	ep.p.ChargeSyscall(ep.k.Cost.InterestUpdate)
	e, _ := ep.table.Upsert(fd)
	e.Events = events
	e.File = entry
	entry.AddWatcher(ep)
	ep.primeReadiness(e)
	return nil
}

// Modify implements core.Poller: epoll_ctl(EPOLL_CTL_MOD). The readiness
// check is repeated with the new mask, as ep_modify does.
func (ep *Epoll) Modify(fd int, events core.EventMask) error {
	if ep.closed {
		return core.ErrClosed
	}
	e := ep.table.Lookup(fd)
	if e == nil {
		return core.ErrNotFound
	}
	ep.p.ChargeSyscall(ep.k.Cost.InterestUpdate)
	e.Events = events
	ep.primeReadiness(e)
	return nil
}

// Remove implements core.Poller: epoll_ctl(EPOLL_CTL_DEL). Any pending entry
// on the ready list is discarded with the interest.
func (ep *Epoll) Remove(fd int) error {
	if ep.closed {
		return core.ErrClosed
	}
	e := ep.table.Lookup(fd)
	if e == nil {
		return core.ErrNotFound
	}
	ep.p.ChargeSyscall(ep.k.Cost.InterestUpdate)
	if e.File != nil {
		e.File.RemoveWatcher(ep)
	}
	ep.table.Delete(fd)
	ep.ready.Clear(fd)
	return nil
}

// Interested implements core.Poller.
func (ep *Epoll) Interested(fd int) bool { return ep.table.Contains(fd) }

// Len implements core.Poller.
func (ep *Epoll) Len() int { return ep.table.Len() }

// Close implements core.Poller: closing the epoll descriptor releases the
// interest set and the ready list. A wait blocked in epoll_wait completes
// immediately with no events.
func (ep *Epoll) Close() error {
	if ep.closed {
		return core.ErrClosed
	}
	ep.table.Each(func(e *interest.Entry) {
		if e.File != nil {
			e.File.RemoveWatcher(ep)
		}
	})
	ep.ready.Reset()
	ep.closed = true
	ep.eng.Abort(ep.k.Now())
	return nil
}

// Wait implements core.Poller: one epoll_wait(2). The handler is invoked at
// the virtual instant the call would have returned.
func (ep *Epoll) Wait(max int, timeout core.Duration, handler func(events []core.Event, now core.Time)) {
	if ep.closed {
		handler(nil, ep.k.Now())
		return
	}
	if max <= 0 {
		max = ep.opts.MaxEvents
	}
	ep.eng.Wait(max, timeout, handler)
}

// primeReadiness performs the registration-time readiness check of
// epoll_ctl: the driver poll callback runs once and, if the descriptor is
// already ready for the requested events, it is placed on the ready list.
func (ep *Epoll) primeReadiness(e *interest.Entry) {
	if e.File == nil {
		return
	}
	revents := e.File.DriverPoll()
	ep.stats.DriverPolls++
	if revents.Any(e.Events | core.POLLERR | core.POLLHUP) {
		ep.ready.Mark(e.FD, revents, e.File.Gen)
	}
}

// collect performs one epoll_wait pass: it walks the ready list only, never
// the interest set — the O(ready) scan that distinguishes epoll from both
// stock poll (O(registered) always) and /dev/poll (O(registered) hint checks).
func (ep *Epoll) collect(firstPass bool, max int, buf []core.Event) []core.Event {
	cost := ep.k.Cost
	ep.stats.Waits++
	if firstPass {
		ep.p.Charge(cost.SyscallEntry)
	} else {
		ep.p.Charge(cost.SchedWakeup)
	}
	events := buf
	ep.ready.Scan(func(fd int, pending core.EventMask, gen uint64) (keep bool) {
		if len(events) >= max {
			// Result buffer full: leave the rest queued for the next wait.
			return true
		}
		e := ep.table.Lookup(fd)
		if e == nil {
			// Interest vanished while queued; drop the stale ready entry.
			return false
		}
		want := e.Events | core.POLLERR | core.POLLHUP | core.POLLNVAL
		if ep.opts.EdgeTriggered {
			// EPOLLET: the recorded transition is the event; deliver it once
			// and drop the mark. No driver re-validation happens, so the
			// report keeps the generation of the transition it records.
			revents := pending & want
			if revents == 0 {
				return false
			}
			events = append(events, core.Event{FD: fd, Ready: revents, Gen: gen})
			return false
		}
		// Level-triggered: re-validate with the driver, exactly like
		// ep_send_events re-polling each ready-list entry.
		entry, ok := ep.p.Get(fd)
		if !ok {
			events = append(events, core.Event{FD: fd, Ready: core.POLLNVAL, Gen: gen})
			return false
		}
		revents := entry.DriverPoll() & want
		ep.stats.DriverPolls++
		if revents == 0 {
			// No longer ready (consumed since it was queued): off the list.
			return false
		}
		events = append(events, core.Event{FD: fd, Ready: revents, Gen: entry.Gen})
		// Still ready: it stays on the ready list, so the next level-triggered
		// wait reports it again until the application drains it.
		return true
	})
	if len(events) > 0 {
		// epoll_wait copies the result array out to user space.
		ep.p.Charge(cost.PollCopyOut.Scale(float64(len(events))))
		ep.stats.CopiedOut += int64(len(events))
		ep.stats.EventsReturned += int64(len(events))
	}
	return events
}

// ReadinessChanged implements simkernel.Watcher: the device driver's wakeup
// callback appends the descriptor to the ready list (ep_poll_callback) in
// interrupt context and wakes epoll_wait if it is blocked.
func (ep *Epoll) ReadinessChanged(now core.Time, fd *simkernel.FD, mask core.EventMask) {
	if ep.closed {
		return
	}
	e := ep.table.Lookup(fd.Num)
	if e == nil {
		return
	}
	if !mask.Any(e.Events | core.POLLERR | core.POLLHUP) {
		return
	}
	if ep.ready.Mark(fd.Num, mask, fd.Gen) {
		ep.k.Interrupt(now, ep.k.Cost.HintPost, nil)
	}
	ep.eng.Wake()
}

var _ core.Poller = (*Epoll)(nil)
var _ core.StatsSource = (*Epoll)(nil)
var _ simkernel.Watcher = (*Epoll)(nil)
