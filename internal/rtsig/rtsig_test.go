package rtsig

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/simtest"
)

func newQueue(env *simtest.Env, opts Options) *Queue { return New(env.K, env.P, opts) }

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

func TestDefaults(t *testing.T) {
	env := simtest.NewEnv()
	q := newQueue(env, Options{})
	if q.Name() != "rtsig" {
		t.Fatalf("Name = %q", q.Name())
	}
	if q.QueueLimit() != DefaultQueueLimit {
		t.Fatalf("QueueLimit = %d", q.QueueLimit())
	}
	if q.Options().Signo != core.SIGRTMIN {
		t.Fatalf("Signo = %d", q.Options().Signo)
	}
	o := DefaultOptions()
	if o.QueueLimit != DefaultQueueLimit || o.BatchDequeue {
		t.Fatalf("DefaultOptions = %+v", o)
	}
}

func TestRegistrationLifecycle(t *testing.T) {
	env := simtest.NewEnv()
	q := newQueue(env, DefaultOptions())
	fd, _ := env.NewFD(0)
	env.P.Batch(0, func() {
		must(t, q.Add(fd.Num, core.POLLIN))
	}, nil)
	env.Run()
	if !q.Interested(fd.Num) || q.Len() != 1 {
		t.Fatal("registration missing")
	}
	if fd.Watchers() != 1 {
		t.Fatalf("fasync watchers = %d", fd.Watchers())
	}
	// Registering costs an fcntl round trip.
	want := env.K.Cost.SyscallEntry + env.K.Cost.FcntlSetSig
	if env.P.TotalCharged != want {
		t.Fatalf("charged %v, want %v", env.P.TotalCharged, want)
	}
	if err := q.Add(fd.Num, core.POLLIN); err != core.ErrExists {
		t.Fatalf("duplicate Add: %v", err)
	}
	if err := q.Register(999, core.SIGRTMIN, core.POLLIN); err != core.ErrBadFD {
		t.Fatalf("Register of unknown fd: %v", err)
	}
	env.P.Batch(env.K.Now(), func() {
		must(t, q.Modify(fd.Num, core.POLLIN|core.POLLOUT))
	}, nil)
	env.Run()
	if err := q.Modify(12345, core.POLLIN); err != core.ErrNotFound {
		t.Fatalf("Modify missing: %v", err)
	}
	env.P.Batch(env.K.Now(), func() {
		must(t, q.Remove(fd.Num))
	}, nil)
	env.Run()
	if q.Interested(fd.Num) || fd.Watchers() != 0 {
		t.Fatal("Remove did not unregister")
	}
	if err := q.Remove(fd.Num); err != core.ErrNotFound {
		t.Fatalf("double Remove: %v", err)
	}
}

func TestSignalDeliveryOneAtATime(t *testing.T) {
	env := simtest.NewEnv()
	q := newQueue(env, DefaultOptions())
	fd, file := env.NewFD(0)
	env.P.Batch(0, func() { must(t, q.Add(fd.Num, core.POLLIN)) }, nil)
	env.Run()

	// Two completions queue two siginfo entries.
	file.SetReady(env.K.Now(), core.POLLIN)
	file.SetReady(env.K.Now(), core.POLLIN)
	env.Run()
	if q.QueueLength() != 2 {
		t.Fatalf("QueueLength = %d", q.QueueLength())
	}

	var col simtest.Collector
	q.Wait(10, core.Forever, col.Handler())
	env.Run()
	// Without batch dequeue, sigwaitinfo returns exactly one event per call.
	if len(col.Events) != 1 || col.Events[0].FD != fd.Num || !col.Events[0].Ready.Has(core.POLLIN) {
		t.Fatalf("events = %+v", col.Events)
	}
	if q.QueueLength() != 1 {
		t.Fatalf("QueueLength after one dequeue = %d", q.QueueLength())
	}
	st := q.MechanismStats()
	if st.Enqueued != 2 || st.EventsReturned != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestBatchDequeueSigtimedwait4(t *testing.T) {
	env := simtest.NewEnv()
	opts := DefaultOptions()
	opts.BatchDequeue = true
	q := newQueue(env, opts)
	fd, file := env.NewFD(0)
	env.P.Batch(0, func() { must(t, q.Add(fd.Num, core.POLLIN)) }, nil)
	env.Run()
	for i := 0; i < 5; i++ {
		file.SetReady(env.K.Now(), core.POLLIN)
	}
	env.Run()

	var col simtest.Collector
	q.Wait(3, core.Forever, col.Handler())
	env.Run()
	if len(col.Events) != 3 {
		t.Fatalf("batch dequeue returned %d events, want 3", len(col.Events))
	}
	if q.QueueLength() != 2 {
		t.Fatalf("QueueLength = %d", q.QueueLength())
	}
}

func TestBatchDequeueCheaperPerEventThanSingle(t *testing.T) {
	run := func(batch bool) core.Duration {
		env := simtest.NewEnv()
		opts := DefaultOptions()
		opts.BatchDequeue = batch
		q := newQueue(env, opts)
		fd, file := env.NewFD(0)
		env.P.Batch(0, func() { must(t, q.Add(fd.Num, core.POLLIN)) }, nil)
		env.Run()
		for i := 0; i < 16; i++ {
			file.SetReady(env.K.Now(), core.POLLIN)
		}
		env.Run()
		before := env.P.TotalCharged
		remaining := 16
		for remaining > 0 {
			got := 0
			q.Wait(16, core.Forever, func(ev []core.Event, _ core.Time) { got = len(ev) })
			env.Run()
			remaining -= got
		}
		return env.P.TotalCharged - before
	}
	single := run(false)
	batched := run(true)
	if batched >= single {
		t.Fatalf("sigtimedwait4 batching (%v) should beat one syscall per event (%v)", batched, single)
	}
}

func TestDequeueOrderBySignalNumberThenFIFO(t *testing.T) {
	env := simtest.NewEnv()
	q := newQueue(env, DefaultOptions())
	fdHigh, fileHigh := env.NewFD(0)
	fdLow, fileLow := env.NewFD(0)
	env.P.Batch(0, func() {
		must(t, q.Register(fdHigh.Num, core.SIGRTMIN+5, core.POLLIN))
		must(t, q.Register(fdLow.Num, core.SIGRTMIN, core.POLLIN))
	}, nil)
	env.Run()

	// The high-numbered signal is queued first, but the low-numbered one must
	// be delivered first ("signals dequeue in order of their assigned signal
	// number").
	fileHigh.SetReady(env.K.Now(), core.POLLIN)
	fileLow.SetReady(env.K.Now(), core.POLLIN)
	fileHigh.SetReady(env.K.Now(), core.POLLHUP)
	env.Run()

	var order []core.Event
	for i := 0; i < 3; i++ {
		q.Wait(1, core.Forever, func(ev []core.Event, _ core.Time) { order = append(order, ev...) })
		env.Run()
	}
	if len(order) != 3 {
		t.Fatalf("order = %+v", order)
	}
	if order[0].FD != fdLow.Num {
		t.Fatalf("lowest signal number must dequeue first: %+v", order)
	}
	if order[1].FD != fdHigh.Num || !order[1].Ready.Has(core.POLLIN) {
		t.Fatalf("FIFO within a signal number violated: %+v", order)
	}
	if order[2].FD != fdHigh.Num || !order[2].Ready.Has(core.POLLHUP) {
		t.Fatalf("FIFO within a signal number violated: %+v", order)
	}
}

func TestWaitBlocksUntilCompletionArrives(t *testing.T) {
	env := simtest.NewEnv()
	q := newQueue(env, DefaultOptions())
	fd, file := env.NewFD(0)
	env.P.Batch(0, func() { must(t, q.Add(fd.Num, core.POLLIN)) }, nil)
	env.Run()
	var col simtest.Collector
	q.Wait(1, core.Forever, col.Handler())
	env.K.Sim.At(core.Time(4*core.Millisecond), func(now core.Time) { file.SetReady(now, core.POLLIN) })
	env.Run()
	if col.Calls != 1 || len(col.Events) != 1 {
		t.Fatalf("collector = %+v", col)
	}
	if col.At < core.Time(4*core.Millisecond) {
		t.Fatalf("woke too early: %v", col.At)
	}
}

func TestWaitTimeoutAndZeroTimeout(t *testing.T) {
	env := simtest.NewEnv()
	q := newQueue(env, DefaultOptions())
	fd, _ := env.NewFD(0)
	env.P.Batch(0, func() { must(t, q.Add(fd.Num, core.POLLIN)) }, nil)
	env.Run()

	var col simtest.Collector
	q.Wait(1, 0, col.Handler())
	env.Run()
	if col.Calls != 1 || len(col.Events) != 0 {
		t.Fatalf("non-blocking wait: %+v", col)
	}

	var col2 simtest.Collector
	q.Wait(1, 5*core.Millisecond, col2.Handler())
	env.Run()
	if col2.Calls != 1 || len(col2.Events) != 0 || col2.At < core.Time(5*core.Millisecond) {
		t.Fatalf("timed wait: %+v", col2)
	}
}

func TestOverflowRaisesSIGIOAndRecoverFlushes(t *testing.T) {
	env := simtest.NewEnv()
	opts := DefaultOptions()
	opts.QueueLimit = 4
	q := newQueue(env, opts)
	fd, file := env.NewFD(0)
	env.P.Batch(0, func() { must(t, q.Add(fd.Num, core.POLLIN)) }, nil)
	env.Run()

	for i := 0; i < 10; i++ {
		file.SetReady(env.K.Now(), core.POLLIN)
	}
	env.Run()
	if !q.Overflowed() {
		t.Fatal("queue did not overflow")
	}
	if q.QueueLength() != 4 {
		t.Fatalf("QueueLength = %d, want the limit 4", q.QueueLength())
	}
	st := q.MechanismStats()
	if st.Overflows != 1 || st.Dropped != 6 || st.Enqueued != 4 {
		t.Fatalf("stats = %+v", st)
	}

	// The next wait reports the SIGIO sentinel before anything else.
	var col simtest.Collector
	q.Wait(1, core.Forever, col.Handler())
	env.Run()
	if len(col.Events) != 1 || col.Events[0].FD != OverflowFD {
		t.Fatalf("expected overflow sentinel, got %+v", col.Events)
	}

	// Recovery flushes pending signals; the application would now poll().
	env.P.Batch(env.K.Now(), func() {
		if flushed := q.Recover(); flushed != 4 {
			t.Errorf("Recover flushed %d, want 4", flushed)
		}
	}, nil)
	env.Run()
	if q.Overflowed() || q.QueueLength() != 0 {
		t.Fatal("Recover did not reset the queue")
	}

	// New completions queue normally again.
	file.SetReady(env.K.Now(), core.POLLIN)
	env.Run()
	if q.QueueLength() != 1 {
		t.Fatalf("QueueLength after recovery = %d", q.QueueLength())
	}
}

func TestStaleEventsSurviveRemoveAndClose(t *testing.T) {
	env := simtest.NewEnv()
	q := newQueue(env, DefaultOptions())
	fd, file := env.NewFD(0)
	env.P.Batch(0, func() { must(t, q.Add(fd.Num, core.POLLIN)) }, nil)
	env.Run()
	file.SetReady(env.K.Now(), core.POLLIN)
	env.Run()

	// The application closes the connection before picking up the event; the
	// stale event stays on the queue and is delivered afterwards.
	env.P.Batch(env.K.Now(), func() {
		must(t, q.Remove(fd.Num))
	}, nil)
	env.Run()
	if err := env.P.CloseFD(env.K.Now(), fd.Num); err != nil {
		t.Fatal(err)
	}
	var col simtest.Collector
	q.Wait(1, core.Forever, col.Handler())
	env.Run()
	if len(col.Events) != 1 || col.Events[0].FD != fd.Num {
		t.Fatalf("stale event lost: %+v", col.Events)
	}
}

func TestEventMaskFiltering(t *testing.T) {
	env := simtest.NewEnv()
	q := newQueue(env, DefaultOptions())
	fd, file := env.NewFD(0)
	env.P.Batch(0, func() { must(t, q.Add(fd.Num, core.POLLIN)) }, nil)
	env.Run()
	// A write-readiness transition does not produce a read-interest signal.
	file.SetReady(env.K.Now(), core.POLLOUT)
	env.Run()
	if q.QueueLength() != 0 {
		t.Fatalf("unwanted completion queued: %d", q.QueueLength())
	}
	// Hangups are always delivered.
	file.SetReady(env.K.Now(), core.POLLHUP)
	env.Run()
	if q.QueueLength() != 1 {
		t.Fatalf("hangup not queued: %d", q.QueueLength())
	}
}

func TestEnqueueCostGrowsWithRegisteredDescriptors(t *testing.T) {
	cost := func(registered int) core.Duration {
		env := simtest.NewEnv()
		q := newQueue(env, DefaultOptions())
		var active *simtest.FakeFile
		env.P.Batch(0, func() {
			fd, f := env.NewFD(0)
			must(t, q.Add(fd.Num, core.POLLIN))
			active = f
			for i := 0; i < registered-1; i++ {
				idleFD, _ := env.NewFD(0)
				must(t, q.Add(idleFD.Num, core.POLLIN))
			}
		}, nil)
		env.Run()
		before := env.K.CPU.Busy
		active.SetReady(env.K.Now(), core.POLLIN)
		env.Run()
		return env.K.CPU.Busy - before
	}
	small := cost(10)
	large := cost(510)
	if large <= small {
		t.Fatalf("enqueue cost should grow with the fasync population: %v -> %v", small, large)
	}
}

func TestCloseAndUseAfterClose(t *testing.T) {
	env := simtest.NewEnv()
	q := newQueue(env, DefaultOptions())
	fd, _ := env.NewFD(0)
	env.P.Batch(0, func() { must(t, q.Add(fd.Num, core.POLLIN)) }, nil)
	env.Run()
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}
	if fd.Watchers() != 0 {
		t.Fatal("fasync watcher leaked")
	}
	if err := q.Close(); err != core.ErrClosed {
		t.Fatalf("double Close: %v", err)
	}
	if err := q.Add(fd.Num, core.POLLIN); err != core.ErrClosed {
		t.Fatalf("Add after Close: %v", err)
	}
	if err := q.Modify(fd.Num, core.POLLIN); err != core.ErrClosed {
		t.Fatalf("Modify after Close: %v", err)
	}
	if err := q.Remove(fd.Num); err != core.ErrClosed {
		t.Fatalf("Remove after Close: %v", err)
	}
	var col simtest.Collector
	q.Wait(1, core.Forever, col.Handler())
	if col.Calls != 1 || col.Events != nil {
		t.Fatalf("Wait after Close: %+v", col)
	}
}

func TestInvalidSignalNumberFallsBackToDefault(t *testing.T) {
	env := simtest.NewEnv()
	q := newQueue(env, DefaultOptions())
	fd, file := env.NewFD(0)
	env.P.Batch(0, func() { must(t, q.Register(fd.Num, 5 /* not an RT signal */, core.POLLIN)) }, nil)
	env.Run()
	file.SetReady(env.K.Now(), core.POLLIN)
	env.Run()
	var col simtest.Collector
	q.Wait(1, core.Forever, col.Handler())
	env.Run()
	if len(col.Events) != 1 {
		t.Fatalf("events = %+v", col.Events)
	}
}

// Property (DESIGN.md §6): the queue never exceeds its limit, every completion
// is either enqueued or counted as dropped, and overflow implies SIGIO.
func TestQueueBoundProperty(t *testing.T) {
	f := func(limit uint8, completions uint8) bool {
		env := simtest.NewEnv()
		opts := DefaultOptions()
		opts.QueueLimit = int(limit%32) + 1
		q := newQueue(env, opts)
		fd, file := env.NewFD(0)
		var err error
		env.P.Batch(0, func() { err = q.Add(fd.Num, core.POLLIN) }, nil)
		env.Run()
		if err != nil {
			return false
		}
		total := int(completions%100) + 1
		for i := 0; i < total; i++ {
			file.SetReady(env.K.Now(), core.POLLIN)
			if q.QueueLength() > opts.QueueLimit {
				return false
			}
		}
		env.Run()
		st := q.MechanismStats()
		if st.Enqueued+st.Dropped != int64(total) {
			return false
		}
		if st.Dropped > 0 && (!q.Overflowed() || st.Overflows == 0) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
