package rtsig

import (
	"testing"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/simtest"
)

// Sustained injected overflow storms (faults.Config.OverflowStormRate):
// several consecutive episodes with live traffic between them. Each episode
// must drop the swallowed posts, raise the overflow flag exactly once, charge
// exactly one SigOverflow interrupt no matter how many posts it swallows,
// hand any waiter the SIGIO sentinel instead of stranding it, and leave the
// queue delivering normally again after Recover.
func TestSustainedOverflowStormRecovery(t *testing.T) {
	env := simtest.NewEnv()
	env.K.Faults = faults.Config{Seed: 11, OverflowStormRate: 1}
	q := newQueue(env, DefaultOptions())
	fd, file := env.NewFD(0)
	env.P.Batch(0, func() { must(t, q.Add(fd.Num, core.POLLIN)) }, nil)
	env.Run()

	dropped := int64(0)
	for episode := 1; episode <= 3; episode++ {
		if episode == 2 {
			// One episode starts against a blocked waiter: the swallowed
			// post still wakes it, and the wake delivers the sentinel.
			var blocked simtest.Collector
			q.Wait(4, core.Forever, blocked.Handler())
			file.SetReady(env.K.Now(), core.POLLIN)
			dropped++
			env.Run()
			if blocked.Calls != 1 || len(blocked.Events) != 1 || blocked.Events[0].FD != OverflowFD {
				t.Fatalf("episode %d: blocked waiter got %+v, want the overflow sentinel", episode, blocked.Events)
			}
		} else {
			// Episode starts with no waiter; the overflow surcharge lands
			// only on the post that starts the episode.
			before := env.K.CPU.Busy
			file.SetReady(env.K.Now(), core.POLLIN)
			dropped++
			env.Run()
			first := env.K.CPU.Busy - before

			before = env.K.CPU.Busy
			file.SetReady(env.K.Now(), core.POLLIN)
			dropped++
			env.Run()
			second := env.K.CPU.Busy - before
			if first-second != env.K.Cost.SigOverflow {
				t.Fatalf("episode %d: overflow surcharge = %v, want exactly SigOverflow %v",
					episode, first-second, env.K.Cost.SigOverflow)
			}

			var col simtest.Collector
			q.Wait(4, core.Forever, col.Handler())
			env.Run()
			if col.Calls != 1 || len(col.Events) != 1 || col.Events[0].FD != OverflowFD {
				t.Fatalf("episode %d: waiter got %+v, want the overflow sentinel", episode, col.Events)
			}
		}
		if !q.Overflowed() || q.QueueLength() != 0 {
			t.Fatalf("episode %d: overflowed=%v len=%d", episode, q.Overflowed(), q.QueueLength())
		}

		env.P.Batch(env.K.Now(), func() { q.Recover() }, nil)
		env.Run()
		if q.Overflowed() {
			t.Fatalf("episode %d: Recover left the overflow flag set", episode)
		}

		// Live traffic between storms: delivery is back to normal.
		env.K.Faults.OverflowStormRate = 0
		file.SetReady(env.K.Now(), core.POLLIN)
		var live simtest.Collector
		q.Wait(4, core.Forever, live.Handler())
		env.Run()
		if live.Calls != 1 || len(live.Events) != 1 || live.Events[0].FD != fd.Num {
			t.Fatalf("episode %d: post-recovery delivery broken: %+v", episode, live.Events)
		}
		env.K.Faults.OverflowStormRate = 1
	}

	st := q.MechanismStats()
	if st.Overflows != 3 {
		t.Fatalf("Overflows = %d, want one per episode (3)", st.Overflows)
	}
	if st.Dropped != dropped {
		t.Fatalf("Dropped = %d, want every swallowed post (%d)", st.Dropped, dropped)
	}
}
