// Package rtsig implements the POSIX Real-Time signal event-delivery model of
// the paper (§2, §4): an application assigns a signal number to each open
// descriptor with fcntl(fd, F_SETSIG, signum); the kernel appends a siginfo
// carrying the descriptor and the band (event mask) to the process's RT signal
// queue whenever a read, write or close completes; the application keeps the
// signals masked and collects them one at a time with sigwaitinfo().
//
// The queue is a bounded resource (1024 entries by default). On overflow the
// kernel raises SIGIO; the application must flush pending signals and fall
// back to poll() to discover any remaining activity — the recovery path that
// phhttpd implements so expensively (§6).
//
// The package also implements the paper's proposed sigtimedwait4() extension:
// dequeueing a batch of siginfo structs with a single system call (§6, future
// work), which the hybrid server and the ablation benchmarks exercise.
//
// The per-descriptor signal registrations live in the shared kernel-resident
// interest table of internal/interest (Entry.Data carries the assigned signal
// number), and sigwaitinfo's blocking behaviour runs on the shared wait
// engine; only the signal queue itself is mechanism-specific.
package rtsig

import (
	"sort"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/interest"
	"repro/internal/simkernel"
)

// DefaultQueueLimit is the kernel's default maximum RT signal queue length
// ("normally set high enough (1024 by default) that it is never exceeded").
const DefaultQueueLimit = 1024

// OverflowFD is the descriptor value reported in the sentinel event delivered
// when the signal queue has overflowed and SIGIO is pending.
const OverflowFD = -1

// OverflowEvent is the sentinel event a Wait delivers to announce a pending
// SIGIO. The application must call Recover and re-scan with poll().
var OverflowEvent = core.Event{FD: OverflowFD, Ready: core.POLLERR}

// Options configure the RT signal queue.
type Options struct {
	// QueueLimit is the maximum number of queued siginfo entries (default 1024).
	QueueLimit int
	// Signo is the RT signal number assigned by Add when the caller does not
	// choose one per descriptor.
	Signo int
	// BatchDequeue enables the sigtimedwait4() extension: Wait(max>1) dequeues
	// up to max events per system call instead of exactly one.
	BatchDequeue bool
}

// DefaultOptions matches phhttpd's configuration on the paper's test kernel.
func DefaultOptions() Options {
	return Options{QueueLimit: DefaultQueueLimit, Signo: core.SIGRTMIN, BatchDequeue: false}
}

// Queue is a process's RT signal queue plus its per-descriptor signal
// assignments. It implements core.Poller so servers can treat it like the
// other mechanisms, with Wait mapping to sigwaitinfo()/sigtimedwait4().
type Queue struct {
	k    *simkernel.Kernel
	p    *simkernel.Proc
	opts Options

	// registered holds the F_SETSIG assignments: Entry.Events is the mask of
	// completions that raise a signal, Entry.Data the assigned signal number,
	// Entry.File the descriptor whose fasync list we joined.
	registered *interest.Table
	bySigno    map[int]*sigFIFO // pending siginfo, FIFO per signal number
	signos     []int            // sorted signal numbers with pending entries
	length     int

	overflowed       bool
	overflowReported bool

	// stormSalt / stormSeq key the injected overflow-storm decision stream
	// (faults.Config.OverflowStormRate): one lane-local sequence per enqueue
	// attempt, salted by the owning process so sibling queues draw
	// independent storms.
	stormSalt uint64
	stormSeq  uint64

	eng interest.Engine

	stats  core.Stats
	closed bool
}

// New creates an RT signal queue for process p.
func New(k *simkernel.Kernel, p *simkernel.Proc, opts Options) *Queue {
	if opts.QueueLimit <= 0 {
		opts.QueueLimit = DefaultQueueLimit
	}
	if opts.Signo == 0 {
		opts.Signo = core.SIGRTMIN
	}
	q := &Queue{
		k:          k,
		p:          p,
		opts:       opts,
		registered: interest.NewTable(),
		bySigno:    make(map[int]*sigFIFO),
	}
	q.eng = interest.Engine{
		Name:    "rtsig",
		K:       k,
		P:       p,
		Collect: q.collect,
		// Blocking in sigwaitinfo() joins no per-descriptor wait queues and a
		// timeout tears nothing down, so OnBlock and TimeoutTeardown stay nil.
		Stats: &q.stats,
	}
	return q
}

// Name implements core.Poller.
func (q *Queue) Name() string { return "rtsig" }

// Options returns the active option set.
func (q *Queue) Options() Options { return q.opts }

// MechanismStats implements core.StatsSource.
func (q *Queue) MechanismStats() core.Stats { return q.stats }

// QueueLength reports the number of pending siginfo entries; the hybrid server
// uses it as its load threshold (§4).
func (q *Queue) QueueLength() int { return q.length }

// QueueLimit reports the configured maximum queue length.
func (q *Queue) QueueLimit() int { return q.opts.QueueLimit }

// Overflowed reports whether the queue has overflowed since the last Recover.
func (q *Queue) Overflowed() bool { return q.overflowed }

// Add implements core.Poller by registering fd with the queue's default signal
// number.
func (q *Queue) Add(fd int, events core.EventMask) error {
	return q.Register(fd, q.opts.Signo, events)
}

// Register assigns an explicit RT signal number to fd, mirroring
// fcntl(fd, F_SETSIG, signo) plus F_SETOWN and O_ASYNC.
func (q *Queue) Register(fd, signo int, events core.EventMask) error {
	if q.closed {
		return core.ErrClosed
	}
	if q.registered.Contains(fd) {
		return core.ErrExists
	}
	if signo < core.SIGRTMIN || signo > core.SIGRTMAX {
		signo = q.opts.Signo
	}
	entry, ok := q.p.Get(fd)
	if !ok {
		return core.ErrBadFD
	}
	q.p.ChargeSyscall(q.k.Cost.FcntlSetSig)
	e, _ := q.registered.Upsert(fd)
	e.Events = events
	e.Data = int64(signo)
	e.File = entry
	entry.AddWatcher(q)
	return nil
}

// Modify implements core.Poller: it updates the event mask used to filter
// completions for fd.
func (q *Queue) Modify(fd int, events core.EventMask) error {
	if q.closed {
		return core.ErrClosed
	}
	e := q.registered.Lookup(fd)
	if e == nil {
		return core.ErrNotFound
	}
	q.p.ChargeSyscall(q.k.Cost.FcntlSetSig)
	e.Events = events
	return nil
}

// Remove implements core.Poller. Siginfo entries already queued for fd remain
// on the queue (the paper: "Events queued before an application closes a
// connection will remain on the RT signal queue, and must be processed and/or
// ignored by applications").
func (q *Queue) Remove(fd int) error {
	if q.closed {
		return core.ErrClosed
	}
	e := q.registered.Lookup(fd)
	if e == nil {
		return core.ErrNotFound
	}
	e.File.RemoveWatcher(q)
	q.registered.Delete(fd)
	return nil
}

// Interested implements core.Poller.
func (q *Queue) Interested(fd int) bool { return q.registered.Contains(fd) }

// Len implements core.Poller: the number of registered descriptors.
func (q *Queue) Len() int { return q.registered.Len() }

// Close implements core.Poller. A wait blocked in sigwaitinfo() completes
// immediately with no events.
func (q *Queue) Close() error {
	if q.closed {
		return core.ErrClosed
	}
	q.registered.Each(func(e *interest.Entry) {
		if e.File != nil {
			e.File.RemoveWatcher(q)
		}
	})
	q.closed = true
	q.eng.Abort(q.k.Now())
	return nil
}

// Recover flushes the signal queue after an overflow, mirroring the
// application changing the handler to SIG_DFL to drop pending signals. It
// returns the number of entries flushed; the caller is expected to follow up
// with a poll() over its descriptors to find any remaining activity.
func (q *Queue) Recover() int {
	q.p.ChargeSyscall(q.k.Cost.SigMaskChange)
	flushed := q.length
	// The flush keeps the per-signo ring storage: phhttpd recovers after
	// every overflow, and reallocating the queue each time was measurable.
	for _, f := range q.bySigno {
		f.reset()
	}
	q.signos = q.signos[:0]
	q.length = 0
	q.overflowed = false
	q.overflowReported = false
	return flushed
}

// Wait implements core.Poller. With max <= 1 (or batch dequeue disabled) it is
// one sigwaitinfo() call returning a single event; with max > 1 and
// BatchDequeue enabled it is the sigtimedwait4() extension returning up to max
// events in one system call. A pending overflow is reported first, as the
// SIGIO sentinel event.
func (q *Queue) Wait(max int, timeout core.Duration, handler func(events []core.Event, now core.Time)) {
	if q.closed {
		handler(nil, q.k.Now())
		return
	}
	if max <= 0 || !q.opts.BatchDequeue {
		max = 1
	}
	q.eng.Wait(max, timeout, handler)
}

// collect performs one sigwaitinfo()/sigtimedwait4() dequeue attempt.
func (q *Queue) collect(firstPass bool, max int, buf []core.Event) []core.Event {
	cost := q.k.Cost
	q.stats.Waits++
	if firstPass {
		q.p.Charge(cost.SyscallEntry)
	} else {
		q.p.Charge(cost.SchedWakeup)
	}
	if q.overflowed && !q.overflowReported {
		// SIGIO announces the overflow; the application learns nothing else
		// from this delivery.
		q.p.Charge(cost.SigDequeue)
		q.overflowReported = true
		q.stats.EventsReturned++
		return append(buf, OverflowEvent)
	}
	events := buf
	for len(events) < max && q.length > 0 {
		si, ok := q.pop()
		if !ok {
			break
		}
		if len(events) == 0 {
			q.p.Charge(cost.SigDequeue)
		} else {
			q.p.Charge(cost.SigDequeueBatch)
		}
		events = append(events, core.Event{FD: si.FD, Ready: si.Band, Gen: si.Gen})
		q.stats.EventsReturned++
	}
	return events
}

// sigFIFO is one signal number's pending siginfo queue: a ring over a reused
// backing array, so the enqueue/dequeue churn of a saturated signal path
// performs no allocation at steady state.
type sigFIFO struct {
	buf  []core.Siginfo
	head int
}

func (f *sigFIFO) empty() bool          { return f.head >= len(f.buf) }
func (f *sigFIFO) push(si core.Siginfo) { f.buf = append(f.buf, si) }
func (f *sigFIFO) pop() core.Siginfo {
	si := f.buf[f.head]
	f.head++
	// Compact once the dead prefix outweighs the live suffix, so a queue
	// that never fully drains (sustained overload) holds O(pending) memory,
	// not O(total signals).
	if f.head > 64 && f.head*2 >= len(f.buf) {
		n := copy(f.buf, f.buf[f.head:])
		f.buf = f.buf[:n]
		f.head = 0
	}
	return si
}
func (f *sigFIFO) reset() {
	f.buf = f.buf[:0]
	f.head = 0
}

// pop removes the oldest pending siginfo from the lowest pending signal
// number: "Signals dequeue in order of their assigned signal number".
func (q *Queue) pop() (core.Siginfo, bool) {
	for len(q.signos) > 0 {
		signo := q.signos[0]
		f := q.bySigno[signo]
		if f == nil || f.empty() {
			q.signos = append(q.signos[:0], q.signos[1:]...)
			continue
		}
		si := f.pop()
		q.length--
		if f.empty() {
			f.reset()
			q.signos = append(q.signos[:0], q.signos[1:]...)
		}
		return si, true
	}
	return core.Siginfo{}, false
}

// push appends a siginfo, keeping the per-signo FIFO and the sorted signo set.
func (q *Queue) push(si core.Siginfo) {
	f := q.bySigno[si.Signo]
	if f == nil {
		f = &sigFIFO{}
		q.bySigno[si.Signo] = f
	}
	if f.empty() {
		f.reset()
		q.signos = append(q.signos, si.Signo)
		sort.Ints(q.signos)
	}
	f.push(si)
	q.length++
}

// ReadinessChanged implements simkernel.Watcher: an I/O completion on a
// registered descriptor queues an RT signal in interrupt context. The enqueue
// cost includes a per-registered-descriptor component (the fasync list walk),
// which is what makes a large population of idle connections slow the signal
// path down — the effect the paper observed in Figures 12 and 13.
func (q *Queue) ReadinessChanged(now core.Time, fd *simkernel.FD, mask core.EventMask) {
	if q.closed {
		return
	}
	reg := q.registered.Lookup(fd.Num)
	if reg == nil {
		return
	}
	if !mask.Any(reg.Events | core.POLLERR | core.POLLHUP) {
		return
	}
	cost := q.k.Cost
	enqueueCost := cost.SigEnqueue + cost.SigEnqueuePerFD.Scale(float64(q.registered.Len()))
	q.k.Interrupt(now, enqueueCost, nil)

	// An injected overflow storm swallows this enqueue as if a kernel-side
	// burst had already filled the queue: the signal is dropped, SIGIO raises,
	// and the application must run its recovery rescan.
	if f := &q.k.Faults; f.OverflowStormRate > 0 {
		if q.stormSalt == 0 {
			q.stormSalt = faults.SaltString(q.p.Name)
		}
		q.stormSeq++
		if f.OverflowStorm(q.stormSalt, q.stormSeq) {
			q.stats.Dropped++
			if !q.overflowed {
				q.overflowed = true
				q.stats.Overflows++
				q.k.Interrupt(now, cost.SigOverflow, nil)
			}
			q.eng.Wake()
			return
		}
	}

	if q.length >= q.opts.QueueLimit {
		q.stats.Dropped++
		if !q.overflowed {
			q.overflowed = true
			q.stats.Overflows++
			q.k.Interrupt(now, cost.SigOverflow, nil)
		}
	} else {
		// The generation records which open of fd.Num this completion belongs
		// to: the siginfo outlives a close of the descriptor (it "remains on
		// the RT signal queue", §4), and by the time it is dequeued the number
		// may name a different connection.
		q.push(core.Siginfo{Signo: int(reg.Data), Band: mask, FD: fd.Num, Gen: fd.Gen})
		q.stats.Enqueued++
	}

	q.eng.Wake()
}

var _ core.Poller = (*Queue)(nil)
var _ core.StatsSource = (*Queue)(nil)
var _ simkernel.Watcher = (*Queue)(nil)
