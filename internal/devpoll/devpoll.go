// Package devpoll implements the paper's primary contribution: the Linux
// /dev/poll interface (§3). The application's interest set lives inside the
// kernel in a hash table and is maintained incrementally by writing pollfd
// structs to the device (POLLREMOVE deletes an interest); readiness is
// collected with ioctl(DP_POLL). Two further optimisations are modelled
// faithfully:
//
//   - device-driver hints (§3.2): each socket carries a backmap entry, and the
//     driver marks exactly which descriptors changed state, so a DP_POLL scan
//     calls the expensive driver poll callback only for hinted descriptors and
//     for cached results that indicated readiness (which must be re-validated —
//     there are no ready→not-ready hints);
//   - an mmap'd result area (§3.3): DP_ALLOC plus mmap() shares a result buffer
//     between kernel and application, eliminating the per-ready-descriptor
//     copy-out.
//
// The kernel-resident interest table, the hint ledger and the blocking-wait
// state machine all come from the shared engine in internal/interest; this
// package contributes only the /dev/poll semantics and cost charges.
package devpoll

import (
	"repro/internal/core"
	"repro/internal/interest"
	"repro/internal/simkernel"
)

// Options configure which of the paper's optimisations are active; the
// defaults enable everything, and the ablation benchmarks switch them off
// individually.
type Options struct {
	// UseHints enables the device-driver hinting backmap of §3.2.
	UseHints bool
	// UseMmap enables the shared result area of §3.3.
	UseMmap bool
	// SolarisOR selects Solaris semantics for re-writing an existing interest
	// (the new events are OR'd in) instead of the paper's replace semantics.
	SolarisOR bool
	// ResultAreaSize is the capacity (in pollfd entries) of the mmap'd result
	// area allocated with DP_ALLOC.
	ResultAreaSize int
}

// DefaultOptions enables hints and the mmap result area, as in the paper's
// measured configuration.
func DefaultOptions() Options {
	return Options{UseHints: true, UseMmap: true, SolarisOR: false, ResultAreaSize: 4096}
}

// DevPoll is a /dev/poll instance: one open of the device, holding one
// kernel-resident interest set. A process may open /dev/poll more than once to
// maintain several independent sets.
type DevPoll struct {
	k    *simkernel.Kernel
	p    *simkernel.Proc
	opts Options

	table  *interest.Table  // kernel-resident interest set; Entry.File is the driver backmap
	hinted *interest.Ledger // descriptors whose driver posted a hint since the last scan
	cache  []cachedPoll     // last result returned by the driver poll, fd-indexed

	mmapDone bool

	eng interest.Engine

	stats  core.Stats
	closed bool
}

// Open opens /dev/poll for process p. It mirrors open("/dev/poll") plus, when
// the mmap result area is enabled, the later DP_ALLOC/mmap setup (charged
// lazily on the first DP_POLL).
func Open(k *simkernel.Kernel, p *simkernel.Proc, opts Options) *DevPoll {
	if opts.ResultAreaSize <= 0 {
		opts.ResultAreaSize = 4096
	}
	d := &DevPoll{
		k:      k,
		p:      p,
		opts:   opts,
		table:  interest.NewTable(),
		hinted: interest.NewLedger(),
	}
	d.eng = interest.Engine{
		Name:    "devpoll",
		K:       k,
		P:       p,
		Collect: d.collect,
		// Block on the single /dev/poll wait queue.
		OnBlock:         func(bool) { d.p.Charge(d.k.Cost.WaitQueueOp) },
		TimeoutTeardown: func() core.Duration { return d.k.Cost.WaitQueueOp },
		Stats:           &d.stats,
	}
	return d
}

// Name implements core.Poller.
func (d *DevPoll) Name() string { return "devpoll" }

// Options returns the active option set.
func (d *DevPoll) Options() Options { return d.opts }

// Table exposes the kernel-resident interest table (for tests and ablations).
func (d *DevPoll) Table() *interest.Table { return d.table }

// MechanismStats implements core.StatsSource.
func (d *DevPoll) MechanismStats() core.Stats { return d.stats }

// Add implements core.Poller: a single-entry write() to /dev/poll.
func (d *DevPoll) Add(fd int, events core.EventMask) error {
	if d.closed {
		return core.ErrClosed
	}
	if d.table.Contains(fd) {
		return core.ErrExists
	}
	return d.Update([]core.PollFD{{FD: fd, Events: events}})
}

// Modify implements core.Poller: re-writing an existing descriptor replaces
// its interest (or ORs it under SolarisOR).
func (d *DevPoll) Modify(fd int, events core.EventMask) error {
	if d.closed {
		return core.ErrClosed
	}
	if !d.table.Contains(fd) {
		return core.ErrNotFound
	}
	return d.Update([]core.PollFD{{FD: fd, Events: events}})
}

// Remove implements core.Poller: a write() carrying POLLREMOVE.
func (d *DevPoll) Remove(fd int) error {
	if d.closed {
		return core.ErrClosed
	}
	if !d.table.Contains(fd) {
		return core.ErrNotFound
	}
	return d.Update([]core.PollFD{{FD: fd, Events: core.POLLREMOVE}})
}

// Interested implements core.Poller.
func (d *DevPoll) Interested(fd int) bool { return d.table.Contains(fd) }

// Len implements core.Poller.
func (d *DevPoll) Len() int { return d.table.Len() }

// Update applies a batch of pollfd updates with a single write() to
// /dev/poll, which is how an application amortises the syscall cost when it
// changes many interests at once (the hybrid server relies on this).
func (d *DevPoll) Update(changes []core.PollFD) error {
	if d.closed {
		return core.ErrClosed
	}
	cost := d.k.Cost
	d.p.ChargeSyscall(cost.InterestUpdate.Scale(float64(len(changes))))
	for _, ch := range changes {
		if ch.Events.Has(core.POLLREMOVE) {
			d.removeLocked(ch.FD)
			continue
		}
		e, isNew := d.table.Upsert(ch.FD)
		if d.opts.SolarisOR && !isNew {
			e.Events |= ch.Events
		} else {
			e.Events = ch.Events
		}
		if isNew {
			// Establish the driver backmap for hints and prime the descriptor
			// so its current state is examined on the next DP_POLL even though
			// no hint has been posted yet.
			var gen uint64
			if entry, ok := d.p.Get(ch.FD); ok {
				entry.AddWatcher(d)
				e.File = entry
				gen = entry.Gen
			}
			d.hinted.Mark(ch.FD, 0, gen)
		}
	}
	return nil
}

// removeLocked drops one interest, its backmap entry, hint and cached result.
func (d *DevPoll) removeLocked(fd int) {
	e := d.table.Lookup(fd)
	if e == nil {
		return
	}
	if e.File != nil {
		e.File.RemoveWatcher(d)
	}
	d.table.Delete(fd)
	d.hinted.Clear(fd)
	if fd < len(d.cache) {
		d.cache[fd] = cachedPoll{}
	}
}

// cachedPoll is one fd's last driver-poll result. The slice replaces a per-fd
// hash map: the result cache is consulted for every registered descriptor on
// every DP_POLL scan, squarely on the hot path.
type cachedPoll struct {
	mask  core.EventMask
	valid bool
}

// cacheGet returns the cached driver result for fd, if any.
func (d *DevPoll) cacheGet(fd int) (core.EventMask, bool) {
	if fd < 0 || fd >= len(d.cache) {
		return 0, false
	}
	c := d.cache[fd]
	return c.mask, c.valid
}

// cachePut records the driver result for fd.
func (d *DevPoll) cachePut(fd int, mask core.EventMask) {
	for fd >= len(d.cache) {
		d.cache = append(d.cache, cachedPoll{})
	}
	d.cache[fd] = cachedPoll{mask: mask, valid: true}
}

// Close implements core.Poller: closing /dev/poll releases the interest set.
// A wait blocked on DP_POLL completes immediately with no events.
func (d *DevPoll) Close() error {
	if d.closed {
		return core.ErrClosed
	}
	d.table.Each(func(e *interest.Entry) {
		if e.File != nil {
			e.File.RemoveWatcher(d)
		}
	})
	d.closed = true
	d.eng.Abort(d.k.Now())
	return nil
}

// Wait implements core.Poller: one ioctl(DP_POLL). The handler is invoked at
// the virtual instant the ioctl would have returned.
func (d *DevPoll) Wait(max int, timeout core.Duration, handler func(events []core.Event, now core.Time)) {
	if d.closed {
		handler(nil, d.k.Now())
		return
	}
	if max <= 0 {
		max = d.opts.ResultAreaSize
	}
	if d.opts.UseMmap && max > d.opts.ResultAreaSize {
		max = d.opts.ResultAreaSize
	}
	d.eng.Wait(max, timeout, handler)
}

// collect performs one DP_POLL pass: it walks the kernel-resident interest
// table, consulting the hint ledger and the cached results to decide which
// descriptors need the expensive driver poll callback.
func (d *DevPoll) collect(firstPass bool, max int, buf []core.Event) []core.Event {
	cost := d.k.Cost
	d.stats.Waits++
	if firstPass {
		d.p.Charge(cost.SyscallEntry)
	} else {
		d.p.Charge(cost.SchedWakeup)
	}
	if d.opts.UseMmap && !d.mmapDone {
		// Lazily perform DP_ALLOC + mmap() the first time results are
		// collected through the shared area.
		d.p.Charge(cost.MmapSetup)
		d.mmapDone = true
	}
	// The backmap lock is taken for reading once per scan.
	d.p.Charge(cost.BackmapLock)

	ready := buf
	d.table.Each(func(e *interest.Entry) {
		fd, want := e.FD, e.Events
		entry, ok := d.p.Get(fd)
		if !ok {
			ready = interest.AppendEvent(ready, max, core.Event{FD: fd, Ready: core.POLLNVAL})
			return
		}
		cached, hasCache := d.cacheGet(fd)
		needDriver := d.hinted.Ready(fd) || !d.opts.UseHints
		if !needDriver && hasCache && cached.Any(want|core.POLLERR|core.POLLHUP) {
			// A cached result that indicated readiness must be re-validated
			// every time; there is no ready→not-ready hint.
			needDriver = true
			d.stats.CacheHits++
		}
		if !needDriver {
			// The hint system lets us skip the driver entirely.
			d.p.Charge(cost.HintCheck)
			d.stats.HintHits++
			return
		}
		revents := entry.DriverPoll()
		d.stats.DriverPolls++
		d.cachePut(fd, revents)
		d.hinted.Clear(fd)
		revents &= want | core.POLLERR | core.POLLHUP | core.POLLNVAL
		if revents != 0 {
			ready = interest.AppendEvent(ready, max, core.Event{FD: fd, Ready: revents, Gen: entry.Gen})
		}
	})

	if len(ready) > 0 {
		if !d.opts.UseMmap {
			d.p.Charge(cost.PollCopyOut.Scale(float64(len(ready))))
			d.stats.CopiedOut += int64(len(ready))
		}
		d.stats.EventsReturned += int64(len(ready))
	}
	return ready
}

// ReadinessChanged implements simkernel.Watcher: the device driver posts a
// hint to our backmapping list and wakes DP_POLL if it is blocked. Posting the
// hint costs interrupt-context CPU time.
func (d *DevPoll) ReadinessChanged(now core.Time, fd *simkernel.FD, mask core.EventMask) {
	if d.closed {
		return
	}
	if d.opts.UseHints {
		if d.hinted.Mark(fd.Num, mask, fd.Gen) {
			d.k.Interrupt(now, d.k.Cost.HintPost, nil)
		}
	}
	d.eng.Wake()
}

var _ core.Poller = (*DevPoll)(nil)
var _ core.StatsSource = (*DevPoll)(nil)
var _ simkernel.Watcher = (*DevPoll)(nil)
