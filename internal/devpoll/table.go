package devpoll

import "repro/internal/core"

// interestEntry is one registered interest in the kernel-resident set.
type interestEntry struct {
	fd     int
	events core.EventMask
}

// Table is the kernel-resident interest set described in §3.1 of the paper: a
// chained hash table keyed by descriptor. "For simplicity, when the average
// bucket size is two, the number of buckets in the hash table is doubled. The
// hash table is never shrunk."
type Table struct {
	buckets [][]interestEntry
	count   int

	// Grows counts bucket-doubling events, exposed for tests and ablations.
	Grows int
}

// initialBuckets is the starting bucket count; the exact value only affects
// how soon the first doubling happens.
const initialBuckets = 8

// NewTable returns an empty interest table.
func NewTable() *Table {
	return &Table{buckets: make([][]interestEntry, initialBuckets)}
}

// hash spreads descriptor numbers across buckets (Fibonacci hashing).
func (t *Table) hash(fd int) int {
	return int(uint32(fd)*2654435761) % len(t.buckets)
}

// Len reports the number of registered interests.
func (t *Table) Len() int { return t.count }

// Buckets reports the current bucket count.
func (t *Table) Buckets() int { return len(t.buckets) }

// AverageChain reports the average bucket occupancy.
func (t *Table) AverageChain() float64 {
	if len(t.buckets) == 0 {
		return 0
	}
	return float64(t.count) / float64(len(t.buckets))
}

// Get returns the interest registered for fd.
func (t *Table) Get(fd int) (core.EventMask, bool) {
	b := t.buckets[t.hash(fd)]
	for _, e := range b {
		if e.fd == fd {
			return e.events, true
		}
	}
	return 0, false
}

// Set registers or replaces the interest for fd and reports whether the entry
// was newly created.
func (t *Table) Set(fd int, events core.EventMask) bool {
	idx := t.hash(fd)
	for i, e := range t.buckets[idx] {
		if e.fd == fd {
			t.buckets[idx][i].events = events
			return false
		}
	}
	t.buckets[idx] = append(t.buckets[idx], interestEntry{fd: fd, events: events})
	t.count++
	if t.AverageChain() >= 2 {
		t.grow()
	}
	return true
}

// Delete removes the interest for fd, reporting whether it was present. The
// table never shrinks.
func (t *Table) Delete(fd int) bool {
	idx := t.hash(fd)
	b := t.buckets[idx]
	for i, e := range b {
		if e.fd == fd {
			t.buckets[idx] = append(b[:i], b[i+1:]...)
			t.count--
			return true
		}
	}
	return false
}

// ForEach visits every interest. Iteration order is deterministic (bucket
// order, insertion order within a bucket) so simulation runs are repeatable.
func (t *Table) ForEach(fn func(fd int, events core.EventMask)) {
	for _, b := range t.buckets {
		for _, e := range b {
			fn(e.fd, e.events)
		}
	}
}

// FDs returns all registered descriptors in iteration order.
func (t *Table) FDs() []int {
	out := make([]int, 0, t.count)
	t.ForEach(func(fd int, _ core.EventMask) { out = append(out, fd) })
	return out
}

// grow doubles the bucket count and rehashes every entry.
func (t *Table) grow() {
	old := t.buckets
	t.buckets = make([][]interestEntry, len(old)*2)
	t.count = 0
	t.Grows++
	for _, b := range old {
		for _, e := range b {
			idx := t.hash(e.fd)
			t.buckets[idx] = append(t.buckets[idx], e)
			t.count++
		}
	}
}
