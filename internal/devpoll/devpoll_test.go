package devpoll

import (
	"testing"

	"repro/internal/core"
	"repro/internal/simkernel"
	"repro/internal/simtest"
)

func open(env *simtest.Env, opts Options) *DevPoll { return Open(env.K, env.P, opts) }

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

func TestDefaultOptions(t *testing.T) {
	o := DefaultOptions()
	if !o.UseHints || !o.UseMmap || o.SolarisOR || o.ResultAreaSize <= 0 {
		t.Fatalf("unexpected defaults: %+v", o)
	}
}

func TestInterestManagementChargesKernelCosts(t *testing.T) {
	env := simtest.NewEnv()
	d := open(env, DefaultOptions())
	if d.Name() != "devpoll" {
		t.Fatalf("Name = %q", d.Name())
	}
	fd, _ := env.NewFD(0)
	env.P.Batch(0, func() {
		must(t, d.Add(fd.Num, core.POLLIN))
	}, nil)
	env.Run()
	want := env.K.Cost.SyscallEntry + env.K.Cost.InterestUpdate
	if env.P.TotalCharged != want {
		t.Fatalf("Add charged %v, want %v", env.P.TotalCharged, want)
	}
	if !d.Interested(fd.Num) || d.Len() != 1 {
		t.Fatal("interest not registered")
	}
	if err := d.Add(fd.Num, core.POLLIN); err != core.ErrExists {
		t.Fatalf("duplicate Add: %v", err)
	}
	if err := d.Modify(99, core.POLLIN); err != core.ErrNotFound {
		t.Fatalf("Modify missing: %v", err)
	}
	if err := d.Remove(99); err != core.ErrNotFound {
		t.Fatalf("Remove missing: %v", err)
	}
	// The backmap watcher is installed on the descriptor.
	if fd.Watchers() != 1 {
		t.Fatalf("backmap watchers = %d", fd.Watchers())
	}
	env.P.Batch(env.K.Now(), func() {
		must(t, d.Remove(fd.Num))
	}, nil)
	env.Run()
	if fd.Watchers() != 0 {
		t.Fatal("backmap watcher leaked after Remove")
	}
	if d.Interested(fd.Num) {
		t.Fatal("interest survived Remove")
	}
}

func TestPollRemoveFlagDeletesInterest(t *testing.T) {
	env := simtest.NewEnv()
	d := open(env, DefaultOptions())
	fd, _ := env.NewFD(0)
	env.P.Batch(0, func() {
		must(t, d.Update([]core.PollFD{{FD: fd.Num, Events: core.POLLIN}}))
		must(t, d.Update([]core.PollFD{{FD: fd.Num, Events: core.POLLREMOVE}}))
	}, nil)
	env.Run()
	if d.Len() != 0 {
		t.Fatalf("Len = %d", d.Len())
	}
	// Removing an unknown fd via POLLREMOVE is a silent no-op, like the device.
	env.P.Batch(env.K.Now(), func() {
		must(t, d.Update([]core.PollFD{{FD: 12345, Events: core.POLLREMOVE}}))
	}, nil)
	env.Run()
}

func TestModifyReplacesInterestByDefaultAndORsInSolarisMode(t *testing.T) {
	env := simtest.NewEnv()
	d := open(env, DefaultOptions())
	fd, _ := env.NewFD(0)
	env.P.Batch(0, func() {
		must(t, d.Add(fd.Num, core.POLLIN))
		must(t, d.Modify(fd.Num, core.POLLOUT))
	}, nil)
	env.Run()
	if ev, _ := d.Table().Get(fd.Num); ev != core.POLLOUT {
		t.Fatalf("replace semantics: got %v", ev)
	}

	env2 := simtest.NewEnv()
	opts := DefaultOptions()
	opts.SolarisOR = true
	d2 := open(env2, opts)
	fd2, _ := env2.NewFD(0)
	env2.P.Batch(0, func() {
		must(t, d2.Add(fd2.Num, core.POLLIN))
		must(t, d2.Modify(fd2.Num, core.POLLOUT))
	}, nil)
	env2.Run()
	if ev, _ := d2.Table().Get(fd2.Num); ev != core.POLLIN|core.POLLOUT {
		t.Fatalf("Solaris OR semantics: got %v", ev)
	}
}

func TestWaitReturnsOnlyReadyDescriptors(t *testing.T) {
	env := simtest.NewEnv()
	d := open(env, DefaultOptions())
	ready, _ := env.NewFD(core.POLLIN)
	idle, _ := env.NewFD(0)
	env.P.Batch(0, func() {
		must(t, d.Add(ready.Num, core.POLLIN))
		must(t, d.Add(idle.Num, core.POLLIN))
	}, nil)
	env.Run()

	var col simtest.Collector
	d.Wait(0, core.Forever, col.Handler())
	env.Run()
	if col.Calls != 1 || len(col.Events) != 1 || col.Events[0].FD != ready.Num {
		t.Fatalf("collector = %+v", col)
	}
	st := d.MechanismStats()
	if st.EventsReturned != 1 || st.Waits != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestHintsSkipDriverPollsForIdleDescriptors(t *testing.T) {
	env := simtest.NewEnv()
	d := open(env, DefaultOptions())
	var idleFiles []*simtest.FakeFile
	const idle = 50
	env.P.Batch(0, func() {
		for i := 0; i < idle; i++ {
			fd, f := env.NewFD(0)
			must(t, d.Add(fd.Num, core.POLLIN))
			idleFiles = append(idleFiles, f)
		}
	}, nil)
	env.Run()

	// First DP_POLL primes every descriptor (all were marked hinted on Add).
	var col simtest.Collector
	d.Wait(0, 0, col.Handler())
	env.Run()
	first := d.MechanismStats()
	if first.DriverPolls != idle {
		t.Fatalf("first scan driver polls = %d, want %d", first.DriverPolls, idle)
	}

	// Second DP_POLL: nothing changed, so hints let every driver poll be
	// skipped.
	var col2 simtest.Collector
	d.Wait(0, 0, col2.Handler())
	env.Run()
	second := d.MechanismStats()
	if got := second.DriverPolls - first.DriverPolls; got != 0 {
		t.Fatalf("second scan performed %d driver polls, want 0", got)
	}
	if second.HintHits-first.HintHits != idle {
		t.Fatalf("hint hits = %d, want %d", second.HintHits-first.HintHits, idle)
	}
	for _, f := range idleFiles {
		if f.Polls > 1 {
			t.Fatalf("idle descriptor driver-polled %d times", f.Polls)
		}
	}
}

func TestHintTriggersDriverPollOnlyForChangedDescriptor(t *testing.T) {
	env := simtest.NewEnv()
	d := open(env, DefaultOptions())
	var files []*simtest.FakeFile
	var fds []int
	env.P.Batch(0, func() {
		for i := 0; i < 20; i++ {
			fd, f := env.NewFD(0)
			must(t, d.Add(fd.Num, core.POLLIN))
			files = append(files, f)
			fds = append(fds, fd.Num)
		}
	}, nil)
	env.Run()
	// Prime.
	d.Wait(0, 0, func([]core.Event, core.Time) {})
	env.Run()
	before := d.MechanismStats().DriverPolls

	// One driver posts a hint.
	files[5].SetReady(env.K.Now(), core.POLLIN)
	var col simtest.Collector
	d.Wait(0, 0, col.Handler())
	env.Run()
	after := d.MechanismStats().DriverPolls
	if after-before != 1 {
		t.Fatalf("driver polls for one hint = %d, want 1", after-before)
	}
	if len(col.Events) != 1 || col.Events[0].FD != fds[5] {
		t.Fatalf("events = %+v", col.Events)
	}
}

func TestCachedReadyResultIsRevalidated(t *testing.T) {
	env := simtest.NewEnv()
	d := open(env, DefaultOptions())
	fd, file := env.NewFD(core.POLLIN)
	env.P.Batch(0, func() { must(t, d.Add(fd.Num, core.POLLIN)) }, nil)
	env.Run()

	// First scan sees it ready.
	d.Wait(0, 0, func([]core.Event, core.Time) {})
	env.Run()
	polls := file.Polls

	// The socket was drained meanwhile without a hint (there is no
	// ready→not-ready hint). The cached "ready" result must be re-validated by
	// calling the driver again, and no event is reported.
	file.ReadyMask = 0
	var col simtest.Collector
	d.Wait(0, 0, col.Handler())
	env.Run()
	if file.Polls != polls+1 {
		t.Fatalf("driver polls = %d, want %d", file.Polls, polls+1)
	}
	if len(col.Events) != 0 {
		t.Fatalf("stale event reported: %+v", col.Events)
	}
	if d.MechanismStats().CacheHits == 0 {
		t.Fatal("cache revalidation not counted")
	}
}

func TestNoHintsOptionDriverPollsEverything(t *testing.T) {
	env := simtest.NewEnv()
	opts := DefaultOptions()
	opts.UseHints = false
	d := open(env, opts)
	env.P.Batch(0, func() {
		for i := 0; i < 10; i++ {
			fd, _ := env.NewFD(0)
			must(t, d.Add(fd.Num, core.POLLIN))
		}
	}, nil)
	env.Run()
	d.Wait(0, 0, func([]core.Event, core.Time) {})
	env.Run()
	d.Wait(0, 0, func([]core.Event, core.Time) {})
	env.Run()
	st := d.MechanismStats()
	if st.DriverPolls != 20 {
		t.Fatalf("driver polls = %d, want 20 (no hinting)", st.DriverPolls)
	}
	if st.HintHits != 0 {
		t.Fatalf("hint hits = %d, want 0", st.HintHits)
	}
}

func TestMmapResultAreaEliminatesCopyOut(t *testing.T) {
	run := func(useMmap bool) (core.Stats, core.Duration) {
		env := simtest.NewEnv()
		opts := DefaultOptions()
		opts.UseMmap = useMmap
		d := open(env, opts)
		env.P.Batch(0, func() {
			for i := 0; i < 8; i++ {
				fd, _ := env.NewFD(core.POLLIN)
				must(t, d.Add(fd.Num, core.POLLIN))
			}
		}, nil)
		env.Run()
		before := env.P.TotalCharged
		d.Wait(0, core.Forever, func([]core.Event, core.Time) {})
		env.Run()
		return d.MechanismStats(), env.P.TotalCharged - before
	}
	withMmap, _ := run(true)
	without, _ := run(false)
	if withMmap.CopiedOut != 0 {
		t.Fatalf("mmap run copied out %d results", withMmap.CopiedOut)
	}
	if without.CopiedOut != 8 {
		t.Fatalf("copy run copied out %d results, want 8", without.CopiedOut)
	}
}

func TestMmapSetupChargedOnce(t *testing.T) {
	env := simtest.NewEnv()
	d := open(env, DefaultOptions())
	fd, _ := env.NewFD(core.POLLIN)
	env.P.Batch(0, func() { must(t, d.Add(fd.Num, core.POLLIN)) }, nil)
	env.Run()
	d.Wait(0, 0, func([]core.Event, core.Time) {})
	env.Run()
	afterFirst := env.P.TotalCharged
	d.Wait(0, 0, func([]core.Event, core.Time) {})
	env.Run()
	secondCost := env.P.TotalCharged - afterFirst
	if secondCost >= afterFirst {
		t.Fatalf("second wait (%v) should be cheaper than first (%v) which paid DP_ALLOC/mmap", secondCost, afterFirst)
	}
}

func TestWaitBlocksUntilHintArrives(t *testing.T) {
	env := simtest.NewEnv()
	d := open(env, DefaultOptions())
	fd, file := env.NewFD(0)
	env.P.Batch(0, func() { must(t, d.Add(fd.Num, core.POLLIN)) }, nil)
	env.Run()

	var col simtest.Collector
	d.Wait(0, core.Forever, col.Handler())
	env.K.Sim.At(core.Time(3*core.Millisecond), func(now core.Time) {
		file.SetReady(now, core.POLLIN)
	})
	env.Run()
	if col.Calls != 1 || len(col.Events) != 1 || col.Events[0].FD != fd.Num {
		t.Fatalf("collector = %+v", col)
	}
	if col.At < core.Time(3*core.Millisecond) {
		t.Fatalf("woke too early: %v", col.At)
	}
}

func TestWaitTimeout(t *testing.T) {
	env := simtest.NewEnv()
	d := open(env, DefaultOptions())
	fd, _ := env.NewFD(0)
	env.P.Batch(0, func() { must(t, d.Add(fd.Num, core.POLLIN)) }, nil)
	env.Run()
	var col simtest.Collector
	d.Wait(0, 20*core.Millisecond, col.Handler())
	env.Run()
	if col.Calls != 1 || len(col.Events) != 0 {
		t.Fatalf("collector = %+v", col)
	}
	if col.At < core.Time(20*core.Millisecond) {
		t.Fatalf("timeout fired early at %v", col.At)
	}
}

func TestResultAreaCapsEvents(t *testing.T) {
	env := simtest.NewEnv()
	opts := DefaultOptions()
	opts.ResultAreaSize = 3
	d := open(env, opts)
	env.P.Batch(0, func() {
		for i := 0; i < 10; i++ {
			fd, _ := env.NewFD(core.POLLIN)
			must(t, d.Add(fd.Num, core.POLLIN))
		}
	}, nil)
	env.Run()
	var col simtest.Collector
	d.Wait(100, core.Forever, col.Handler())
	env.Run()
	if len(col.Events) != 3 {
		t.Fatalf("events = %d, want the result-area cap of 3", len(col.Events))
	}
}

func TestClosedDescriptorReportsPOLLNVAL(t *testing.T) {
	env := simtest.NewEnv()
	d := open(env, DefaultOptions())
	fd, _ := env.NewFD(0)
	env.P.Batch(0, func() { must(t, d.Add(fd.Num, core.POLLIN)) }, nil)
	env.Run()
	if err := env.P.CloseFD(0, fd.Num); err != nil {
		t.Fatal(err)
	}
	var col simtest.Collector
	d.Wait(0, core.Forever, col.Handler())
	env.Run()
	if len(col.Events) != 1 || !col.Events[0].Ready.Has(core.POLLNVAL) {
		t.Fatalf("events = %+v", col.Events)
	}
}

func TestCloseReleasesBackmapsAndRejectsFurtherUse(t *testing.T) {
	env := simtest.NewEnv()
	d := open(env, DefaultOptions())
	fd, _ := env.NewFD(0)
	env.P.Batch(0, func() { must(t, d.Add(fd.Num, core.POLLIN)) }, nil)
	env.Run()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if fd.Watchers() != 0 {
		t.Fatal("backmap watcher leaked after Close")
	}
	if err := d.Add(fd.Num, core.POLLIN); err != core.ErrClosed {
		t.Fatalf("Add after Close: %v", err)
	}
	if err := d.Close(); err != core.ErrClosed {
		t.Fatalf("double Close: %v", err)
	}
	var col simtest.Collector
	d.Wait(0, core.Forever, col.Handler())
	if col.Calls != 1 || col.Events != nil {
		t.Fatalf("Wait after Close: %+v", col)
	}
}

func TestNewlyAddedReadyDescriptorIsReportedWithoutAHint(t *testing.T) {
	env := simtest.NewEnv()
	d := open(env, DefaultOptions())
	// The descriptor is already readable before interest is registered; no
	// driver hint will ever be posted for the existing data.
	fd, _ := env.NewFD(core.POLLIN)
	env.P.Batch(0, func() { must(t, d.Add(fd.Num, core.POLLIN)) }, nil)
	env.Run()
	var col simtest.Collector
	d.Wait(0, core.Forever, col.Handler())
	env.Run()
	if len(col.Events) != 1 || col.Events[0].FD != fd.Num {
		t.Fatalf("pre-existing readiness lost: %+v", col.Events)
	}
}

// Property (DESIGN.md §6): a readiness transition is never silently lost —
// after any sequence of hints and scans, a descriptor whose driver reports
// readiness is returned by the next DP_POLL.
func TestNoLostWakeupProperty(t *testing.T) {
	env := simtest.NewEnv()
	d := open(env, DefaultOptions())
	const n = 30
	files := make([]*simtest.FakeFile, n)
	fds := make([]int, n)
	env.P.Batch(0, func() {
		for i := 0; i < n; i++ {
			fd, f := env.NewFD(0)
			must(t, d.Add(fd.Num, core.POLLIN))
			files[i], fds[i] = f, fd.Num
		}
	}, nil)
	env.Run()
	d.Wait(0, 0, func([]core.Event, core.Time) {}) // prime
	env.Run()

	for round := 0; round < 20; round++ {
		idx := (round * 7) % n
		files[idx].SetReady(env.K.Now(), core.POLLIN)
		var col simtest.Collector
		d.Wait(0, core.Forever, col.Handler())
		env.Run()
		found := false
		for _, e := range col.Events {
			if e.FD == fds[idx] {
				found = true
			}
		}
		if !found {
			t.Fatalf("round %d: readiness on fd %d lost (events %+v)", round, fds[idx], col.Events)
		}
		// Drain it again for the next round.
		files[idx].ReadyMask = 0
		d.Wait(0, 0, func([]core.Event, core.Time) {})
		env.Run()
	}
}

// The central claim of §3: with a large idle interest set, the per-wait cost
// of /dev/poll stays far below stock poll's, because idle descriptors cost a
// hint check rather than a driver poll and no copy-in happens at all.
func TestWaitCostNearlyFlatWithIdleDescriptors(t *testing.T) {
	waitCost := func(idle int) core.Duration {
		env := simtest.NewEnv()
		d := open(env, DefaultOptions())
		env.P.Batch(0, func() {
			active, _ := env.NewFD(core.POLLIN)
			must(t, d.Add(active.Num, core.POLLIN))
			for i := 0; i < idle; i++ {
				fd, _ := env.NewFD(0)
				must(t, d.Add(fd.Num, core.POLLIN))
			}
		}, nil)
		env.Run()
		d.Wait(0, 0, func([]core.Event, core.Time) {}) // prime hints + mmap
		env.Run()
		before := env.P.TotalCharged
		d.Wait(0, 0, func([]core.Event, core.Time) {})
		env.Run()
		return env.P.TotalCharged - before
	}
	small := waitCost(10)
	large := waitCost(510)
	// The marginal cost of an idle descriptor must be the cheap hint check, not
	// the expensive driver poll + copy-in that stock poll would pay. Allow a
	// generous factor of two of slack over the pure hint-check cost.
	cost := simkernel.DefaultCostModel()
	marginal := large - small
	budget := (cost.HintCheck * 2).Scale(500)
	stockEquivalent := (cost.DriverPoll + cost.PollCopyIn).Scale(500)
	if marginal > budget {
		t.Fatalf("devpoll marginal cost per idle descriptor too high: %v for 500 fds (budget %v)", marginal, budget)
	}
	if marginal*5 > stockEquivalent {
		t.Fatalf("devpoll idle cost (%v) should be far below the stock poll equivalent (%v)", marginal, stockEquivalent)
	}
}
